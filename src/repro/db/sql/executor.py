"""SQL executor: runs parsed statements against the storage layer.

Plans are simple but cost-faithful: equality predicates on indexed
columns become index probes; everything else scans.  Every elementary
operation is charged to the :class:`~repro.db.cost.CostModel`, which is
how the TPC-W fast/slow page dichotomy emerges.
"""

from __future__ import annotations

import dataclasses
import functools
import re
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.db.cost import CostModel
from repro.db.errors import ColumnError, ProgrammingError, SQLSyntaxError, TableError
from repro.db.sql.ast import (
    Begin,
    Between,
    BinaryOp,
    Commit,
    ColumnRef,
    InSubquery,
    CreateIndex,
    CreateTable,
    Delete,
    Expression,
    FuncCall,
    InList,
    Insert,
    IsNull,
    Like,
    Literal,
    OrderItem,
    Placeholder,
    Rollback,
    Select,
    SelectItem,
    Statement,
    UnaryOp,
    Update,
)
from repro.db.table import Table

#: An environment maps table alias -> row dict.
Env = Dict[str, Dict[str, Any]]


@dataclasses.dataclass
class ResultSet:
    """The outcome of one statement."""

    columns: List[str] = dataclasses.field(default_factory=list)
    rows: List[Tuple] = dataclasses.field(default_factory=list)
    rowcount: int = 0
    lastrowid: Optional[int] = None

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


@functools.lru_cache(maxsize=4096)
def _like_regex(pattern: str) -> "re.Pattern[str]":
    regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
    return re.compile(f"^{regex}$", re.IGNORECASE | re.DOTALL)


class Executor:
    """Executes AST statements against a dict of tables.

    The executor holds no locks itself; :class:`repro.db.engine.Database`
    wraps each call in the appropriate :class:`LockScope`.
    """

    def __init__(self, tables: Dict[str, Table], cost: CostModel):
        self._tables = tables
        self._cost = cost
        self._statement_cost = 0.0
        self._undo = None  # the active transaction's UndoLog, if any
        self._subquery_cache: Dict[int, frozenset] = {}

    # ------------------------------------------------------------------
    def execute(self, statement: Statement, params: Sequence[Any] = (),
                undo=None) -> ResultSet:
        self._undo = undo
        self._subquery_cache: Dict[int, frozenset] = {}
        self._statement_cost = self._cost.charge("statement")
        if isinstance(statement, Select):
            result = self._execute_select(statement, params)
        elif isinstance(statement, Insert):
            result = self._execute_insert(statement, params)
        elif isinstance(statement, Update):
            result = self._execute_update(statement, params)
        elif isinstance(statement, Delete):
            result = self._execute_delete(statement, params)
        elif isinstance(statement, CreateTable):
            result = self._execute_create_table(statement)
        elif isinstance(statement, CreateIndex):
            result = self._execute_create_index(statement)
        elif isinstance(statement, (Begin, Commit, Rollback)):
            raise ProgrammingError(
                "transaction statements are handled by the engine, not "
                "the executor"
            )
        else:
            raise ProgrammingError(f"cannot execute {type(statement).__name__}")
        self._undo = None
        self._cost.settle(self._statement_cost)
        return result

    def _charge(self, operation: str, count: int = 1) -> None:
        if count:
            self._statement_cost += self._cost.charge(operation, count)

    def _table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise TableError(f"no such table: {name!r}")

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------
    def _eval(self, expr: Expression, env: Env, params: Sequence[Any]) -> Any:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, Placeholder):
            if expr.index >= len(params):
                raise ProgrammingError(
                    f"statement requires at least {expr.index + 1} parameters, "
                    f"got {len(params)}"
                )
            return params[expr.index]
        if isinstance(expr, ColumnRef):
            return self._resolve_column(expr, env)
        if isinstance(expr, BinaryOp):
            return self._eval_binary(expr, env, params)
        if isinstance(expr, UnaryOp):
            value = self._eval(expr.operand, env, params)
            if expr.op == "NOT":
                return not _truthy(value)
            if expr.op == "-":
                return None if value is None else -value
            raise ProgrammingError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, InSubquery):
            value = self._eval(expr.operand, env, params)
            if value is None:
                return False
            members = self._subquery_values(expr, params)
            found = value in members
            return (not found) if expr.negated else found
        if isinstance(expr, InList):
            value = self._eval(expr.operand, env, params)
            if value is None:
                return False
            members = [self._eval(option, env, params) for option in expr.options]
            found = value in members
            return (not found) if expr.negated else found
        if isinstance(expr, Like):
            value = self._eval(expr.operand, env, params)
            pattern = self._eval(expr.pattern, env, params)
            if value is None or pattern is None:
                return False
            matched = bool(_like_regex(str(pattern)).match(str(value)))
            return (not matched) if expr.negated else matched
        if isinstance(expr, Between):
            value = self._eval(expr.operand, env, params)
            low = self._eval(expr.low, env, params)
            high = self._eval(expr.high, env, params)
            if value is None or low is None or high is None:
                return False
            inside = low <= value <= high
            return (not inside) if expr.negated else inside
        if isinstance(expr, IsNull):
            value = self._eval(expr.operand, env, params)
            is_null = value is None
            return (not is_null) if expr.negated else is_null
        if isinstance(expr, FuncCall):
            raise ProgrammingError(
                f"aggregate {expr.name} used outside SELECT projections"
            )
        raise ProgrammingError(f"cannot evaluate {type(expr).__name__}")

    def _eval_binary(self, expr: BinaryOp, env: Env, params: Sequence[Any]) -> Any:
        op = expr.op
        if op == "AND":
            return (
                _truthy(self._eval(expr.left, env, params))
                and _truthy(self._eval(expr.right, env, params))
            )
        if op == "OR":
            return (
                _truthy(self._eval(expr.left, env, params))
                or _truthy(self._eval(expr.right, env, params))
            )
        left = self._eval(expr.left, env, params)
        right = self._eval(expr.right, env, params)
        if op in ("+", "-", "*", "/"):
            if left is None or right is None:
                return None
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if right == 0:
                return None  # MySQL: division by zero yields NULL
            return left / right
        # Comparisons: NULL never compares true.
        if left is None or right is None:
            return False
        left, right = _coerce_pair(left, right)
        try:
            if op == "=":
                return left == right
            if op == "<>":
                return left != right
            if op == "<":
                return left < right
            if op == ">":
                return left > right
            if op == "<=":
                return left <= right
            if op == ">=":
                return left >= right
        except TypeError:
            return False
        raise ProgrammingError(f"unknown operator {op!r}")

    def _subquery_values(self, expr: InSubquery,
                         params: Sequence[Any]) -> frozenset:
        """Materialise an uncorrelated subquery once per statement."""
        key = id(expr)
        cached = self._subquery_cache.get(key)
        if cached is None:
            result = self._execute_select(expr.subquery, params)
            if result.rows and len(result.rows[0]) != 1:
                raise ProgrammingError(
                    "IN (SELECT ...) subquery must project exactly one column"
                )
            cached = frozenset(row[0] for row in result.rows)
            self._subquery_cache[key] = cached
        return cached

    def _resolve_column(self, ref: ColumnRef, env: Env) -> Any:
        if ref.table is not None:
            row = env.get(ref.table)
            if row is None:
                raise ColumnError(f"unknown table alias {ref.table!r} in {ref}")
            if ref.name not in row:
                raise ColumnError(f"no column {ref.name!r} in alias {ref.table!r}")
            return row[ref.name]
        matches = [alias for alias, row in env.items() if ref.name in row]
        if not matches:
            raise ColumnError(f"unknown column {ref.name!r}")
        if len(matches) > 1:
            raise ColumnError(
                f"ambiguous column {ref.name!r} (in {sorted(matches)})"
            )
        return env[matches[0]][ref.name]

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def _execute_select(self, select: Select, params: Sequence[Any]) -> ResultSet:
        envs = self._produce_envs(select, params)
        if select.where is not None:
            envs = [
                env for env in envs
                if _truthy(self._eval(select.where, env, params))
            ]

        if select.group_by or _has_aggregate(select.items):
            out_columns, out_rows = self._project_grouped(select, envs, params)
            env_for_order = None
        else:
            out_columns, out_rows, env_for_order = self._project_plain(
                select, envs, params
            )

        if select.distinct:
            seen = set()
            unique_rows = []
            unique_envs = [] if env_for_order is not None else None
            for i, row in enumerate(out_rows):
                if row not in seen:
                    seen.add(row)
                    unique_rows.append(row)
                    if unique_envs is not None:
                        unique_envs.append(env_for_order[i])
            out_rows = unique_rows
            if unique_envs is not None:
                env_for_order = unique_envs

        if select.order_by:
            out_rows = self._order_rows(
                select.order_by, out_columns, out_rows, env_for_order, params
            )

        offset = self._eval_scalar(select.offset, params, default=0)
        limit = self._eval_scalar(select.limit, params, default=None)
        if offset:
            out_rows = out_rows[int(offset):]
        if limit is not None:
            out_rows = out_rows[: int(limit)]

        self._charge("row_emit", len(out_rows))
        return ResultSet(columns=out_columns, rows=out_rows, rowcount=len(out_rows))

    def _eval_scalar(self, expr: Optional[Expression], params: Sequence[Any],
                     default: Any) -> Any:
        if expr is None:
            return default
        return self._eval(expr, {}, params)

    def _produce_envs(self, select: Select, params: Sequence[Any]) -> List[Env]:
        if select.table is None:
            return [{}]
        base = self._table(select.table)
        base_alias = select.alias or select.table
        known_aliases = {base_alias}
        for join in select.joins:
            if join.alias in known_aliases:
                raise SQLSyntaxError(f"duplicate table alias {join.alias!r}")
            known_aliases.add(join.alias)

        envs = [
            {base_alias: row}
            for row in self._base_rows(base, base_alias, select.where, params)
        ]
        for join in select.joins:
            envs = self._apply_join(envs, join, params)
        return envs

    def _base_rows(self, table: Table, alias: str,
                   where: Optional[Expression],
                   params: Sequence[Any]) -> List[Dict[str, Any]]:
        """Rows of the driving table, via index when the WHERE clause has
        a usable top-level equality conjunct, else a charged full scan."""
        probe = self._find_index_probe(table, alias, where, params)
        if probe is not None:
            index, value = probe
            self._charge("index_probe")
            row_ids = index.lookup(value)
            self._charge("index_row", len(row_ids))
            return [table.rows[row_id] for row_id in row_ids
                    if row_id in table.rows]
        self._charge("row_scan", len(table.rows))
        return list(table.rows.values())

    def _find_index_probe(self, table: Table, alias: str,
                          where: Optional[Expression],
                          params: Sequence[Any]):
        """Look for ``col = constant`` among top-level AND conjuncts where
        ``col`` is an indexed column of this table."""
        for conjunct in _conjuncts(where):
            if not isinstance(conjunct, BinaryOp) or conjunct.op != "=":
                continue
            for ref_side, value_side in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if not isinstance(ref_side, ColumnRef):
                    continue
                if ref_side.table is not None and ref_side.table != alias:
                    continue
                if not table.has_column(ref_side.name):
                    continue
                if not _is_constant(value_side):
                    continue
                index = table.index_on(ref_side.name)
                if index is None:
                    continue
                value = self._eval(value_side, {}, params)
                value = _coerce_for_column(table, ref_side.name, value)
                return index, value
        return None

    def _apply_join(self, envs: List[Env], join, params: Sequence[Any]) -> List[Env]:
        table = self._table(join.table)
        # Determine which side of ON belongs to the joined table.
        if join.left.table == join.alias:
            inner_col, outer_ref = join.left.name, join.right
        elif join.right.table == join.alias:
            inner_col, outer_ref = join.right.name, join.left
        elif table.has_column(join.left.name) and join.left.table is None:
            inner_col, outer_ref = join.left.name, join.right
        elif table.has_column(join.right.name) and join.right.table is None:
            inner_col, outer_ref = join.right.name, join.left
        else:
            raise SQLSyntaxError(
                f"cannot attribute ON columns of join to {join.alias!r}"
            )
        if not table.has_column(inner_col):
            raise ColumnError(
                f"join table {join.table!r} has no column {inner_col!r}"
            )

        index = table.index_on(inner_col)
        if index is None:
            # Build a transient hash table: one scan of the joined table.
            # Snapshot first: concurrent inserts (MyISAM-style shared
            # lock) may grow the dict while we iterate.
            snapshot = list(table.rows.values())
            self._charge("row_scan", len(snapshot))
            buckets: Dict[Any, List[Dict[str, Any]]] = {}
            for row in snapshot:
                buckets.setdefault(row[inner_col], []).append(row)
            lookup: Callable[[Any], List[Dict[str, Any]]] = (
                lambda v: buckets.get(v, [])
            )
            probe_op = "join_probe"
        else:
            lookup = lambda v: [
                table.rows[rid] for rid in index.lookup(v) if rid in table.rows
            ]
            probe_op = "index_probe"

        null_row = {name: None for name in table.column_names}
        joined: List[Env] = []
        for env in envs:
            outer_value = self._eval(outer_ref, env, params)
            self._charge(probe_op)
            matches = lookup(outer_value) if outer_value is not None else []
            if matches:
                self._charge("index_row" if index is not None else "row_emit",
                             len(matches))
                for match in matches:
                    new_env = dict(env)
                    new_env[join.alias] = match
                    joined.append(new_env)
            elif join.outer:
                new_env = dict(env)
                new_env[join.alias] = null_row
                joined.append(new_env)
        return joined

    # -- projection -----------------------------------------------------
    def _output_columns(self, select: Select) -> List[str]:
        columns: List[str] = []
        for item in select.items:
            if item.star:
                if item.star_table is not None:
                    aliases = [item.star_table]
                else:
                    aliases = self._all_aliases(select)
                for alias in aliases:
                    columns.extend(self._alias_columns(select, alias))
            else:
                columns.append(item.alias or _expression_label(item.expression))
        return columns

    def _all_aliases(self, select: Select) -> List[str]:
        aliases = []
        if select.table is not None:
            aliases.append(select.alias or select.table)
        aliases.extend(join.alias for join in select.joins)
        return aliases

    def _alias_columns(self, select: Select, alias: str) -> List[str]:
        name = None
        if select.table is not None and (select.alias or select.table) == alias:
            name = select.table
        else:
            for join in select.joins:
                if join.alias == alias:
                    name = join.table
                    break
        if name is None:
            raise ColumnError(f"unknown alias {alias!r} in star projection")
        return list(self._table(name).column_names)

    def _project_env(self, select: Select, env: Env,
                     params: Sequence[Any]) -> Tuple:
        values: List[Any] = []
        for item in select.items:
            if item.star:
                aliases = (
                    [item.star_table] if item.star_table is not None
                    else self._all_aliases(select)
                )
                for alias in aliases:
                    if alias not in env:
                        raise ColumnError(f"unknown alias {alias!r}")
                    table_columns = self._alias_columns(select, alias)
                    values.extend(env[alias][c] for c in table_columns)
            else:
                values.append(self._eval(item.expression, env, params))
        return tuple(values)

    def _project_plain(self, select: Select, envs: List[Env],
                       params: Sequence[Any]):
        columns = self._output_columns(select)
        rows = [self._project_env(select, env, params) for env in envs]
        return columns, rows, envs

    def _project_grouped(self, select: Select, envs: List[Env],
                         params: Sequence[Any]):
        columns = self._output_columns(select)
        if select.group_by:
            groups: Dict[Tuple, List[Env]] = {}
            order: List[Tuple] = []
            for env in envs:
                key = tuple(
                    self._eval(expr, env, params) for expr in select.group_by
                )
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(env)
                self._charge("row_group")
            grouped = [groups[key] for key in order]
        else:
            # Aggregates without GROUP BY: one group of everything.
            self._charge("row_group", len(envs))
            grouped = [envs]

        rows: List[Tuple] = []
        for group in grouped:
            if not group and not select.group_by:
                # e.g. COUNT(*) over an empty table still yields a row.
                group_env_list: List[Env] = []
            else:
                group_env_list = group
            if select.having is not None:
                having_value = self._eval_grouped(
                    select.having, group_env_list, params
                )
                if not _truthy(having_value):
                    continue
            values = []
            for item in select.items:
                if item.star:
                    raise SQLSyntaxError(
                        "SELECT * cannot be combined with GROUP BY/aggregates"
                    )
                values.append(
                    self._eval_grouped(item.expression, group_env_list, params)
                )
            rows.append(tuple(values))
        return columns, rows

    def _eval_grouped(self, expr: Expression, group: List[Env],
                      params: Sequence[Any]) -> Any:
        """Evaluate an expression in grouped context: aggregates reduce
        over the group; bare columns use the group's first row (MySQL's
        permissive ONLY_FULL_GROUP_BY-off behaviour)."""
        if isinstance(expr, FuncCall):
            return self._eval_aggregate(expr, group, params)
        if isinstance(expr, BinaryOp):
            if expr.op in ("AND", "OR"):
                left = self._eval_grouped(expr.left, group, params)
                if expr.op == "AND":
                    return _truthy(left) and _truthy(
                        self._eval_grouped(expr.right, group, params)
                    )
                return _truthy(left) or _truthy(
                    self._eval_grouped(expr.right, group, params)
                )
            rebuilt = BinaryOp(
                expr.op,
                Literal(self._eval_grouped(expr.left, group, params)),
                Literal(self._eval_grouped(expr.right, group, params)),
            )
            return self._eval_binary(rebuilt, {}, params)
        if isinstance(expr, UnaryOp):
            inner = self._eval_grouped(expr.operand, group, params)
            if expr.op == "NOT":
                return not _truthy(inner)
            return None if inner is None else -inner
        representative = group[0] if group else {}
        return self._eval(expr, representative, params)

    def _eval_aggregate(self, call: FuncCall, group: List[Env],
                        params: Sequence[Any]) -> Any:
        if call.star:
            return len(group)
        assert call.argument is not None
        values = [
            self._eval(call.argument, env, params) for env in group
        ]
        values = [v for v in values if v is not None]
        if call.distinct:
            values = list(dict.fromkeys(values))
        name = call.name
        if name == "COUNT":
            return len(values)
        if not values:
            return None
        if name == "SUM":
            return sum(values)
        if name == "AVG":
            return sum(values) / len(values)
        if name == "MIN":
            return min(values)
        if name == "MAX":
            return max(values)
        raise ProgrammingError(f"unknown aggregate {name!r}")

    # -- ordering ---------------------------------------------------------
    def _order_rows(self, order_by: Sequence[OrderItem], columns: List[str],
                    rows: List[Tuple], envs: Optional[List[Env]],
                    params: Sequence[Any]) -> List[Tuple]:
        self._charge("row_sort", len(rows))
        column_positions = {name: i for i, name in enumerate(columns)}

        def key_parts(index_row: Tuple[int, Tuple]) -> Tuple:
            i, row = index_row
            parts = []
            for item in order_by:
                value = None
                expr = item.expression
                if (
                    isinstance(expr, ColumnRef)
                    and expr.table is None
                    and expr.name in column_positions
                ):
                    value = row[column_positions[expr.name]]
                elif isinstance(expr, Literal) and isinstance(expr.value, int):
                    # ORDER BY 2 → second output column (1-based)
                    position = expr.value - 1
                    if 0 <= position < len(row):
                        value = row[position]
                elif envs is not None:
                    value = self._eval(expr, envs[i], params)
                else:
                    raise ColumnError(
                        f"ORDER BY expression {expr!r} does not name an "
                        f"output column of a grouped query"
                    )
                parts.append(_SortKey(value, item.ascending))
            return tuple(parts)

        decorated = sorted(enumerate(rows), key=key_parts)
        return [row for _, row in decorated]

    # ------------------------------------------------------------------
    # INSERT / UPDATE / DELETE / CREATE
    # ------------------------------------------------------------------
    def _execute_insert(self, insert: Insert, params: Sequence[Any]) -> ResultSet:
        table = self._table(insert.table)
        columns = list(insert.columns) if insert.columns else table.column_names
        lastrowid = None
        for value_row in insert.rows:
            if len(value_row) != len(columns):
                raise ProgrammingError(
                    f"INSERT row has {len(value_row)} values for "
                    f"{len(columns)} columns"
                )
            values = {
                column: self._eval(expr, {}, params)
                for column, expr in zip(columns, value_row)
            }
            lastrowid = table.insert(values)
            if self._undo is not None:
                self._undo.record_insert(table, table.last_internal_row_id)
            self._charge("row_write")
        return ResultSet(rowcount=len(insert.rows), lastrowid=lastrowid)

    def _matching_row_ids(self, table: Table, alias: str,
                          where: Optional[Expression],
                          params: Sequence[Any]) -> List[int]:
        probe = self._find_index_probe(table, alias, where, params)
        if probe is not None:
            index, value = probe
            self._charge("index_probe")
            candidates = index.lookup(value)
            self._charge("index_row", len(candidates))
        else:
            self._charge("row_scan", len(table.rows))
            candidates = list(table.rows.keys())
        if where is None:
            return list(candidates)
        matched = []
        for row_id in candidates:
            row = table.rows.get(row_id)
            if row is None:
                continue
            if _truthy(self._eval(where, {alias: row}, params)):
                matched.append(row_id)
        return matched

    def _execute_update(self, update: Update, params: Sequence[Any]) -> ResultSet:
        table = self._table(update.table)
        row_ids = self._matching_row_ids(table, update.table, update.where, params)
        for row_id in row_ids:
            row = table.rows[row_id]
            env = {update.table: row}
            changes = {
                column: self._eval(expr, env, params)
                for column, expr in update.assignments
            }
            if self._undo is not None:
                before = {column: row[column] for column in changes}
                self._undo.record_update(table, row_id, before)
            table.update_row(row_id, changes)
            self._charge("row_write")
        return ResultSet(rowcount=len(row_ids))

    def _execute_delete(self, delete: Delete, params: Sequence[Any]) -> ResultSet:
        table = self._table(delete.table)
        row_ids = self._matching_row_ids(table, delete.table, delete.where, params)
        for row_id in row_ids:
            if self._undo is not None:
                self._undo.record_delete(table, table.rows[row_id])
            table.delete_row(row_id)
            self._charge("row_write")
        return ResultSet(rowcount=len(row_ids))

    def _execute_create_table(self, create: CreateTable) -> ResultSet:
        if create.name in self._tables:
            raise TableError(f"table {create.name!r} already exists")
        self._tables[create.name] = Table(create.name, list(create.columns))
        return ResultSet()

    def _execute_create_index(self, create: CreateIndex) -> ResultSet:
        table = self._table(create.table)
        table.create_index(create.name, create.column)
        return ResultSet()


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------

def _truthy(value: Any) -> bool:
    return bool(value)


def _coerce_for_column(table: Table, column: str, value: Any) -> Any:
    """Coerce a literal toward a column's type for exact index lookup.

    MySQL compares a numeric string against an integer column
    numerically; hash indexes need the coercion applied before probing
    (``WHERE i_id = '3'`` must hit the row whose i_id is 3).
    """
    base = table.column(column).base_type
    if isinstance(value, str) and base in (
        "INT", "INTEGER", "BIGINT", "FLOAT", "DOUBLE", "DECIMAL", "NUMERIC",
    ):
        try:
            numeric = float(value)
        except ValueError:
            return value
        if base in ("INT", "INTEGER", "BIGINT") and numeric.is_integer():
            return int(numeric)
        return numeric
    if isinstance(value, (int, float)) and base in ("VARCHAR", "CHAR", "TEXT"):
        return str(value)
    return value


def _coerce_pair(left: Any, right: Any) -> Tuple[Any, Any]:
    """MySQL-flavoured implicit coercion for comparisons: a number and a
    numeric string compare numerically."""
    if isinstance(left, str) and isinstance(right, (int, float)):
        try:
            return float(left), float(right)
        except ValueError:
            return left, str(right)
    if isinstance(right, str) and isinstance(left, (int, float)):
        try:
            return float(left), float(right)
        except ValueError:
            return str(left), right
    return left, right


def _conjuncts(where: Optional[Expression]) -> Iterable[Expression]:
    """Flatten top-level ANDs into a list of conjuncts."""
    if where is None:
        return
    stack = [where]
    while stack:
        node = stack.pop()
        if isinstance(node, BinaryOp) and node.op == "AND":
            stack.append(node.left)
            stack.append(node.right)
        else:
            yield node


def _is_constant(expr: Expression) -> bool:
    return isinstance(expr, (Literal, Placeholder))


def _has_aggregate(items: Sequence[SelectItem]) -> bool:
    return any(
        _contains_aggregate(item.expression) for item in items if not item.star
    )


def _contains_aggregate(expr: Expression) -> bool:
    if isinstance(expr, FuncCall):
        return True
    if isinstance(expr, BinaryOp):
        return _contains_aggregate(expr.left) or _contains_aggregate(expr.right)
    if isinstance(expr, UnaryOp):
        return _contains_aggregate(expr.operand)
    return False


def _expression_label(expr: Expression) -> str:
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, FuncCall):
        if expr.star:
            return f"{expr.name}(*)"
        return f"{expr.name}({_expression_label(expr.argument)})"
    if isinstance(expr, Literal):
        return repr(expr.value)
    return "expr"


class _SortKey:
    """Orders values with NULLs first and mixed types without raising."""

    __slots__ = ("value", "ascending")

    def __init__(self, value: Any, ascending: bool):
        self.value = value
        self.ascending = ascending

    def _rank(self) -> Tuple:
        value = self.value
        if value is None:
            return (0, 0)
        if isinstance(value, bool):
            return (1, int(value))
        if isinstance(value, (int, float)):
            return (1, value)
        return (2, str(value))

    def __lt__(self, other: "_SortKey") -> bool:
        if self.ascending:
            return self._rank() < other._rank()
        return self._rank() > other._rank()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _SortKey):
            return NotImplemented
        return self._rank() == other._rank()
