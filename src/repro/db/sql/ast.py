"""SQL abstract syntax tree nodes.

All nodes are immutable dataclasses; parsed statements are cached by
SQL text in the engine, so one AST may be executed concurrently by many
threads with different parameter bindings.
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Optional, Tuple

from repro.db.table import Column


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------

class Expression:
    """Base class for expressions."""


@dataclasses.dataclass(frozen=True)
class Literal(Expression):
    value: Any


@dataclasses.dataclass(frozen=True)
class Placeholder(Expression):
    """A ``%s`` parameter; ``index`` is its 0-based position."""

    index: int


@dataclasses.dataclass(frozen=True)
class ColumnRef(Expression):
    """``name`` or ``alias.name``."""

    name: str
    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclasses.dataclass(frozen=True)
class BinaryOp(Expression):
    """Comparison, arithmetic, AND/OR."""

    op: str  # = <> < > <= >= + - * / AND OR
    left: Expression
    right: Expression


@dataclasses.dataclass(frozen=True)
class UnaryOp(Expression):
    op: str  # NOT, -
    operand: Expression


@dataclasses.dataclass(frozen=True)
class FuncCall(Expression):
    """Aggregate call: COUNT/SUM/AVG/MIN/MAX.  ``star`` for COUNT(*)."""

    name: str
    argument: Optional[Expression] = None
    star: bool = False
    distinct: bool = False


@dataclasses.dataclass(frozen=True)
class InList(Expression):
    operand: Expression
    options: Tuple[Expression, ...]
    negated: bool = False


@dataclasses.dataclass(frozen=True)
class InSubquery(Expression):
    """``operand IN (SELECT ...)`` — uncorrelated subqueries only.

    The subquery is evaluated once per statement and materialised as a
    set of its first column's values.
    """

    operand: Expression
    subquery: "Select"
    negated: bool = False


@dataclasses.dataclass(frozen=True)
class Like(Expression):
    operand: Expression
    pattern: Expression
    negated: bool = False


@dataclasses.dataclass(frozen=True)
class Between(Expression):
    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclasses.dataclass(frozen=True)
class IsNull(Expression):
    operand: Expression
    negated: bool = False


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------

class Statement:
    """Base class for statements."""


@dataclasses.dataclass(frozen=True)
class SelectItem:
    """One projection: expression plus optional ``AS alias``."""

    expression: Expression
    alias: Optional[str] = None
    star: bool = False
    star_table: Optional[str] = None  # for ``alias.*``


@dataclasses.dataclass(frozen=True)
class Join:
    """``JOIN table [alias] ON left = right`` (equi-joins only)."""

    table: str
    alias: str
    left: ColumnRef
    right: ColumnRef
    outer: bool = False  # LEFT JOIN


@dataclasses.dataclass(frozen=True)
class OrderItem:
    expression: Expression
    ascending: bool = True


@dataclasses.dataclass(frozen=True)
class Select(Statement):
    items: Tuple[SelectItem, ...]
    table: Optional[str] = None
    alias: Optional[str] = None
    joins: Tuple[Join, ...] = ()
    where: Optional[Expression] = None
    group_by: Tuple[Expression, ...] = ()
    having: Optional[Expression] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[Expression] = None
    offset: Optional[Expression] = None
    distinct: bool = False


@dataclasses.dataclass(frozen=True)
class Insert(Statement):
    table: str
    columns: Tuple[str, ...]
    rows: Tuple[Tuple[Expression, ...], ...]


@dataclasses.dataclass(frozen=True)
class Update(Statement):
    table: str
    assignments: Tuple[Tuple[str, Expression], ...]
    where: Optional[Expression] = None


@dataclasses.dataclass(frozen=True)
class Delete(Statement):
    table: str
    where: Optional[Expression] = None


@dataclasses.dataclass(frozen=True)
class CreateTable(Statement):
    name: str
    columns: Tuple[Column, ...]


@dataclasses.dataclass(frozen=True)
class CreateIndex(Statement):
    name: str
    table: str
    column: str


@dataclasses.dataclass(frozen=True)
class Begin(Statement):
    """BEGIN or START TRANSACTION."""


@dataclasses.dataclass(frozen=True)
class Commit(Statement):
    """COMMIT."""


@dataclasses.dataclass(frozen=True)
class Rollback(Statement):
    """ROLLBACK."""
