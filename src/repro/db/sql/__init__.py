"""SQL subset: lexer, AST, recursive-descent parser, executor."""

from repro.db.sql.ast import (
    BinaryOp,
    Between,
    ColumnRef,
    CreateIndex,
    CreateTable,
    Delete,
    FuncCall,
    InList,
    Insert,
    IsNull,
    Like,
    Literal,
    Placeholder,
    Select,
    SelectItem,
    Statement,
    UnaryOp,
    Update,
)
from repro.db.sql.lexer import Token, tokenize_sql
from repro.db.sql.parser import parse_sql
from repro.db.sql.executor import Executor, ResultSet

__all__ = [
    "BinaryOp",
    "Between",
    "ColumnRef",
    "CreateIndex",
    "CreateTable",
    "Delete",
    "FuncCall",
    "InList",
    "Insert",
    "IsNull",
    "Like",
    "Literal",
    "Placeholder",
    "Select",
    "SelectItem",
    "Statement",
    "UnaryOp",
    "Update",
    "Token",
    "tokenize_sql",
    "parse_sql",
    "Executor",
    "ResultSet",
]
