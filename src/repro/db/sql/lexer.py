"""SQL tokenizer."""

from __future__ import annotations

import dataclasses
import enum
from typing import List

from repro.db.errors import SQLSyntaxError


class TokenKind(enum.Enum):
    KEYWORD = "keyword"        # normalised to uppercase
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"      # = <> != < > <= >= + - * /
    PUNCT = "punct"            # ( ) , . ;
    PLACEHOLDER = "placeholder"  # %s
    END = "end"


KEYWORDS = frozenset(
    """
    SELECT FROM WHERE AND OR NOT IN LIKE BETWEEN IS NULL AS
    ORDER BY GROUP HAVING LIMIT OFFSET ASC DESC DISTINCT
    INSERT INTO VALUES UPDATE SET DELETE
    CREATE TABLE INDEX ON PRIMARY KEY AUTO_INCREMENT
    JOIN INNER LEFT
    BEGIN START TRANSACTION COMMIT ROLLBACK
    COUNT SUM AVG MIN MAX
    TRUE FALSE
    """.split()
)

_OPERATOR_STARTS = "=<>!+-*/"
_TWO_CHAR_OPERATORS = frozenset({"<>", "!=", "<=", ">="})


@dataclasses.dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: str
    position: int

    def matches(self, kind: TokenKind, value: str = None) -> bool:
        if self.kind is not kind:
            return False
        return value is None or self.value == value


def tokenize_sql(sql: str) -> List[Token]:
    """Tokenize a SQL string.  ``%s`` becomes a PLACEHOLDER token."""
    tokens: List[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "%" and i + 1 < n and sql[i + 1] == "s":
            tokens.append(Token(TokenKind.PLACEHOLDER, "%s", i))
            i += 2
            continue
        if ch == "'" or ch == '"':
            start = i
            i += 1
            buf = []
            while i < n:
                if sql[i] == ch:
                    if i + 1 < n and sql[i + 1] == ch:  # doubled quote escape
                        buf.append(ch)
                        i += 2
                        continue
                    break
                buf.append(sql[i])
                i += 1
            else:
                raise SQLSyntaxError("unterminated string literal", sql, start)
            i += 1
            tokens.append(Token(TokenKind.STRING, "".join(buf), start))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            start = i
            seen_dot = False
            while i < n and (sql[i].isdigit() or (sql[i] == "." and not seen_dot)):
                if sql[i] == ".":
                    # a dot not followed by a digit terminates the number
                    if i + 1 >= n or not sql[i + 1].isdigit():
                        break
                    seen_dot = True
                i += 1
            tokens.append(Token(TokenKind.NUMBER, sql[start:i], start))
            continue
        if ch.isalpha() or ch == "_" or ch == "`":
            start = i
            if ch == "`":  # backtick-quoted identifier
                i += 1
                ident_start = i
                while i < n and sql[i] != "`":
                    i += 1
                if i >= n:
                    raise SQLSyntaxError("unterminated backtick identifier", sql, start)
                word = sql[ident_start:i]
                i += 1
                tokens.append(Token(TokenKind.IDENTIFIER, word, start))
                continue
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenKind.IDENTIFIER, word, start))
            continue
        if ch in _OPERATOR_STARTS:
            two = sql[i : i + 2]
            if two in _TWO_CHAR_OPERATORS:
                tokens.append(Token(TokenKind.OPERATOR, two, i))
                i += 2
            else:
                if ch == "!":
                    raise SQLSyntaxError("unexpected '!'", sql, i)
                tokens.append(Token(TokenKind.OPERATOR, ch, i))
                i += 1
            continue
        if ch in "(),.;":
            tokens.append(Token(TokenKind.PUNCT, ch, i))
            i += 1
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r}", sql, i)
    tokens.append(Token(TokenKind.END, "", n))
    return tokens
