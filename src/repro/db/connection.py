"""DB-API-style connections and cursors.

The paper's code examples use the MySQLdb idiom::

    cursor = getconn().cursor()
    cursor.execute("SELECT title, heading FROM page WHERE pageid=%s", pageid)
    title, heading = cursor.fetchone()

This module reproduces that surface: ``%s`` placeholders, ``fetchone``/
``fetchall``/iteration, ``cursor.close()``.  A :class:`Connection` is
the *scarce resource* of the whole study — it is handed out by the
bounded :class:`~repro.db.pool.ConnectionPool` and, in the baseline
server, pinned to a worker thread for the entire request lifetime.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.db.engine import Database
from repro.db.errors import ProgrammingError
from repro.db.sql.executor import ResultSet


class Cursor:
    """Executes statements and buffers their results."""

    def __init__(self, connection: "Connection"):
        self._connection = connection
        self._result: Optional[ResultSet] = None
        self._fetch_index = 0
        self._closed = False

    # -- DB-API surface --------------------------------------------------
    def execute(self, sql: str, params: Any = None) -> "Cursor":
        """Run one statement.  ``params`` may be a single value or a
        sequence, matching MySQLdb's forgiving behaviour."""
        self._check_open()
        if params is None:
            bound: Sequence[Any] = ()
        elif isinstance(params, (list, tuple)):
            bound = params
        else:
            bound = (params,)
        self._result = self._connection._execute(sql, bound)
        self._fetch_index = 0
        return self

    def fetchone(self) -> Optional[Tuple]:
        self._check_has_result()
        if self._fetch_index >= len(self._result.rows):
            return None
        row = self._result.rows[self._fetch_index]
        self._fetch_index += 1
        return row

    def fetchall(self) -> List[Tuple]:
        self._check_has_result()
        rows = self._result.rows[self._fetch_index:]
        self._fetch_index = len(self._result.rows)
        return rows

    def fetchmany(self, size: int = 1) -> List[Tuple]:
        self._check_has_result()
        end = self._fetch_index + size
        rows = self._result.rows[self._fetch_index:end]
        self._fetch_index = min(end, len(self._result.rows))
        return rows

    def __iter__(self) -> Iterator[Tuple]:
        self._check_has_result()
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    @property
    def rowcount(self) -> int:
        return self._result.rowcount if self._result is not None else -1

    @property
    def lastrowid(self) -> Optional[int]:
        return self._result.lastrowid if self._result is not None else None

    @property
    def description(self) -> Optional[List[Tuple]]:
        """DB-API description: 7-tuples with just the name populated."""
        if self._result is None or not self._result.columns:
            return None
        return [
            (name, None, None, None, None, None, None)
            for name in self._result.columns
        ]

    def close(self) -> None:
        self._closed = True
        self._result = None

    # -- internals ---------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ProgrammingError("cursor is closed")
        self._connection._check_open()

    def _check_has_result(self) -> None:
        self._check_open()
        if self._result is None:
            raise ProgrammingError("no statement has been executed")


class Connection:
    """One logical database connection.

    Serialises its own statements (one in flight at a time), like a real
    wire connection.  Tracks usage statistics so experiments can report
    connection utilisation — the quantity the paper's scheme improves.
    """

    _next_id = 1
    _id_lock = threading.Lock()

    def __init__(self, database: Database, on_close=None,
                 clock: Callable[[], float] = time.monotonic):
        with Connection._id_lock:
            self.connection_id = Connection._next_id
            Connection._next_id += 1
        self._database = database
        self._closed = False
        self._busy = threading.Lock()
        self._on_close = on_close
        self._clock = clock
        self.statements_executed = 0
        #: Wall-clock seconds spent actually executing statements — the
        #: numerator of the utilisation the paper's scheme improves
        #: (the denominator being how long the connection is held).
        self.busy_seconds = 0.0
        self.created_at = clock()

    def cursor(self) -> Cursor:
        self._check_open()
        return Cursor(self)

    def execute(self, sql: str, params: Any = None) -> Cursor:
        """Convenience: open a cursor and execute in one call."""
        cursor = self.cursor()
        cursor.execute(sql, params)
        return cursor

    def begin(self) -> None:
        """Open a transaction (equivalent to executing BEGIN)."""
        self.execute("BEGIN")

    def commit(self) -> None:
        """Commit the open transaction."""
        self.execute("COMMIT")

    def rollback(self) -> int:
        """Roll back the open transaction; returns undone operations."""
        return self.execute("ROLLBACK").rowcount

    def transaction(self) -> "_TransactionScope":
        """``with conn.transaction():`` — commit on success, roll back
        on exception (the buy-confirm safety wrapper)."""
        return _TransactionScope(self)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._on_close is not None:
            self._on_close(self)

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- internals ---------------------------------------------------------
    def _execute(self, sql: str, params: Sequence[Any]) -> ResultSet:
        self._check_open()
        with self._busy:
            self.statements_executed += 1
            statement = self._database.prepare(sql)
            started = self._clock()
            try:
                return self._database.execute_statement(
                    statement, params, connection_id=self.connection_id
                )
            finally:
                self.busy_seconds += self._clock() - started

    def utilization(self) -> float:
        """Fraction of this connection's lifetime spent executing."""
        lifetime = self._clock() - self.created_at
        if lifetime <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / lifetime)

    def _check_open(self) -> None:
        if self._closed:
            raise ProgrammingError("connection is closed")


class _TransactionScope:
    """Context manager: BEGIN on enter, COMMIT/ROLLBACK on exit."""

    def __init__(self, connection: Connection):
        self._connection = connection

    def __enter__(self) -> Connection:
        self._connection.begin()
        return self._connection

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._connection.commit()
        else:
            self._connection.rollback()
