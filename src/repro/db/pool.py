"""The bounded database connection pool.

"Connections to such a database are often stored in the web server's
threads ... a limited number of database connections are stored and
shared by the threads" (paper §1, §2.2).  This pool is that limit made
explicit: at most ``size`` connections exist; :meth:`acquire` blocks
when all are out.  The pool also measures what the paper's scheme
optimises: every checkout records how long the connection was *held*
and how much of that time it spent actually *querying*, so
:meth:`utilization_report` can state the connection busy fraction —
the quantity decided by *who* holds connections and for how long.

Raw ``acquire``/``release`` is deliberately low-level (a missed or
doubled release corrupts the scarce resource the whole study is
about); server code goes through :mod:`repro.server.resources`, and
``tools/check_acquire_sites.py`` enforces that in CI.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.db.connection import Connection
from repro.db.engine import Database
from repro.db.errors import PoolClosedError, PoolReleaseError, PoolTimeoutError
from repro.util.timeseries import SummaryAccumulator


class ConnectionPool:
    """A fixed-size, blocking pool of :class:`Connection` objects.

    Connections are created lazily up to ``size`` and recycled on
    release.  ``acquire`` blocks (optionally with a timeout) when the
    pool is exhausted — the situation the thread-per-request model
    creates whenever more workers want the database than connections
    exist.
    """

    def __init__(self, database: Database, size: int,
                 clock: Callable[[], float] = time.monotonic):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.database = database
        self.size = size
        self._clock = clock
        #: Optional :class:`repro.faults.plan.FaultPlan` consulted at
        #: the top of every :meth:`acquire` (delay or exhaust faults).
        #: Assigned by the owning server; the pool stays ignorant of
        #: the plan's structure.
        self.faults = None
        self._idle: Deque[Connection] = deque()
        self._all: list = []
        self._created = 0
        self._in_use = 0
        self._closed = False
        self._mutex = threading.Lock()
        self._available = threading.Condition(self._mutex)
        # Checked-out connections and their checkout snapshot:
        # (checkout time, busy_seconds at checkout).  Membership is
        # also the release guard — a connection absent from this map
        # was either never issued or already returned.
        self._checked_out: Dict[Connection, Tuple[float, float]] = {}
        # -- statistics
        self.total_acquires = 0
        self.total_wait_seconds = 0.0
        self.peak_in_use = 0
        #: Seconds connections spent checked out (completed checkouts).
        self.total_held_seconds = 0.0
        #: Seconds of those held seconds spent executing statements.
        self.total_checkout_busy_seconds = 0.0
        self.completed_checkouts = 0
        self._wait_times = SummaryAccumulator("acquire-wait")

    # ------------------------------------------------------------------
    def acquire(self, timeout: Optional[float] = None) -> Connection:
        """Check out a connection, blocking while none are free."""
        if self.faults is not None:
            # An injected DELAY sleeps here (outside the condition, so
            # it does not serialise other acquirers); EXHAUST/FAIL
            # raises PoolTimeoutError exactly as a starved wait would.
            self.faults.on_pool_acquire()
        start = self._clock()
        with self._available:
            if self._closed:
                raise PoolClosedError("connection pool is closed")
            while not self._idle and self._created >= self.size:
                if not self._available.wait(timeout=timeout):
                    raise PoolTimeoutError(
                        f"no connection available within {timeout}s "
                        f"(pool size {self.size})"
                    )
                if self._closed:
                    raise PoolClosedError("connection pool is closed")
            if self._idle:
                connection = self._idle.popleft()
            else:
                connection = Connection(self.database, clock=self._clock)
                self._all.append(connection)
                self._created += 1
            self._in_use += 1
            self.peak_in_use = max(self.peak_in_use, self._in_use)
            self.total_acquires += 1
            now = self._clock()
            wait = now - start
            self.total_wait_seconds += wait
            self._wait_times.add(wait)
            self._checked_out[connection] = (now, connection.busy_seconds)
            return connection

    def release(self, connection: Connection) -> None:
        """Return a connection to the pool.

        Raises :class:`PoolReleaseError` on a double release or on a
        connection this pool never issued — both used to corrupt the
        idle deque and the in-use count silently.
        """
        with self._available:
            checkout = self._checked_out.pop(connection, None)
            if checkout is None:
                raise PoolReleaseError(
                    f"connection {connection.connection_id} is not checked "
                    f"out of this pool (double release, or a connection the "
                    f"pool never issued)"
                )
            checked_out_at, busy_at_checkout = checkout
            self.total_held_seconds += self._clock() - checked_out_at
            self.total_checkout_busy_seconds += (
                connection.busy_seconds - busy_at_checkout
            )
            self.completed_checkouts += 1
            if connection.closed:
                # A handler closed it outright: replace capacity.
                self._created -= 1
            else:
                self._idle.append(connection)
            self._in_use -= 1
            self._available.notify()

    class _Lease:
        def __init__(self, pool: "ConnectionPool", timeout: Optional[float]):
            self._pool = pool
            self._timeout = timeout
            self.connection: Optional[Connection] = None

        def __enter__(self) -> Connection:
            self.connection = self._pool.acquire(timeout=self._timeout)
            return self.connection

        def __exit__(self, *exc_info) -> None:
            if self.connection is not None:
                self._pool.release(self.connection)
                self.connection = None

    def lease(self, timeout: Optional[float] = None) -> "_Lease":
        """``with pool.lease() as conn:`` acquire/release scope."""
        return self._Lease(self, timeout)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down; waiting acquirers get PoolClosedError."""
        with self._available:
            self._closed = True
            while self._idle:
                self._idle.popleft().close()
            self._available.notify_all()

    @property
    def in_use(self) -> int:
        with self._mutex:
            return self._in_use

    @property
    def idle(self) -> int:
        with self._mutex:
            return len(self._idle)

    def connections(self) -> list:
        """Every connection this pool has created (for statistics)."""
        with self._mutex:
            return list(self._all)

    def total_busy_seconds(self) -> float:
        """Total statement-execution time across all connections."""
        return sum(c.busy_seconds for c in self.connections())

    @property
    def mean_wait_seconds(self) -> float:
        with self._mutex:
            if self.total_acquires == 0:
                return 0.0
            return self.total_wait_seconds / self.total_acquires

    def utilization_report(self) -> Dict:
        """Busy-fraction accounting over completed checkouts.

        ``busy_fraction`` is seconds-spent-querying over seconds-held —
        the paper's headline resource-efficiency metric (connections
        pinned to threads that parse and render sit idle; connections
        held only for data generation stay busy).  In-flight checkouts
        are not included; read the report after they return (e.g. after
        server shutdown, which releases every pinned connection).
        """
        with self._mutex:
            held = self.total_held_seconds
            busy = self.total_checkout_busy_seconds
            report = {
                "size": self.size,
                "acquires": self.total_acquires,
                "completed_checkouts": self.completed_checkouts,
                "in_use": self._in_use,
                "held_seconds": held,
                "busy_seconds": busy,
                "busy_fraction": (busy / held) if held > 0 else 0.0,
            }
        report["acquire_wait"] = self._wait_times.summary()
        return report
