"""Compile a parsed template node tree to one Python render function.

The interpreter in :mod:`repro.templates.nodes` walks a node tree per
request.  This module lowers that tree once, at template-load time,
into a single generated Python function built with ``compile()`` /
``exec`` — the cached-loader approach Jinja2 and Django use — so the
render stage (the pool the paper separates out) runs native code:

- adjacent literal runs are pre-joined into one ``parts.append``;
- variable lookups, autoescaping, and constant filter arguments are
  lowered to direct code with the filter callables bound as constants;
- ``{% for %}`` becomes a native loop writing straight into the scope
  dict, ``{% if %}`` native branches, ``{% with %}`` direct bindings;
- ``{% include %}``/``{% extends %}`` become calls into the target
  template's own compiled function (``Template.render_into``), with
  block overrides carried as :class:`~repro.templates.nodes.
  BlockOverride` objects so compiled and interpreted templates
  interleave freely in one inheritance chain.

Equivalence is the contract: compiled output is byte-identical to the
interpreter for every construct, including autoescaping, filter
chains, ``forloop`` metadata, and error messages (enforced by
``tests/templates/test_compiler_equivalence.py``).  Any node the
compiler cannot lower raises :class:`CompileUnsupported` and the
engine silently falls back to the interpreter for that template.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.templates.context import MISSING, _step
from repro.templates.errors import TemplateNotFoundError, TemplateRenderError
from repro.templates.filters import SafeString, escape_html
from repro.templates.fragcache import render_fragment
from repro.templates.nodes import (
    BlockNode,
    BlockOverride,
    CacheNode,
    ExtendsNode,
    FilterExpression,
    ForLoopInfo,
    ForNode,
    IfNode,
    IncludeNode,
    Node,
    TextNode,
    VariableNode,
    WithNode,
)


class CompileUnsupported(Exception):
    """Raised internally for constructs the compiler cannot lower."""


#: Names every generated function can rely on.  Everything else the
#: generated code needs (filter callables, Condition objects, engines,
#: block-override dicts) is bound as a numbered module constant.
_BASE_NAMESPACE = {
    "_MISSING": MISSING,
    "_Safe": SafeString,
    "_escape": escape_html,
    "_step": _step,
    "_TemplateRenderError": TemplateRenderError,
    "_ForLoop": ForLoopInfo,
    "_Override": BlockOverride,
    "_render_fragment": render_fragment,
}


def compile_template(template, engine, strict: bool = False):
    """Compile ``template.nodes``; returns ``fn(context, parts)``.

    Returns ``None`` when the tree contains something the compiler
    cannot lower (the engine then renders interpretively).  With
    ``strict=True`` compilation errors propagate instead — used by the
    equivalence tests so codegen bugs surface as failures, never as
    silent slow paths.
    """
    try:
        return _Compiler(template.name).compile(template.nodes)
    except Exception:
        if strict:
            raise
        return None


class _Writer:
    """An indented source-line accumulator."""

    def __init__(self, indent: int = 1):
        self.lines: List[str] = []
        self._indent = indent

    def __call__(self, line: str) -> None:
        self.lines.append("    " * self._indent + line)

    def indent(self) -> None:
        self._indent += 1

    def dedent(self) -> None:
        self._indent -= 1


class _Compiler:
    def __init__(self, template_name: str):
        self.template_name = template_name
        self.namespace: Dict[str, Any] = dict(_BASE_NAMESPACE)
        self.functions: List[str] = []
        #: const name -> {block name: (nodes, function name)}; resolved
        #: into BlockOverride dicts after exec, when the compiled block
        #: functions exist as objects.
        self._pending_blocks: Dict[str, Dict[str, Tuple[List[Node], str]]] = {}
        self._counter = 0
        #: Static scope: template variable name -> Python local temp.
        #: ``{% for %}``/``{% with %}`` bindings in the current function
        #: live in real locals (mirrored into the context scope dict so
        #: includes, conditions, and interpreted overrides still see
        #: them); reads through this map skip the scope-stack scan.
        self._locals: Dict[str, str] = {}
        #: Template names whose bodies were inlined at compile time
        #: ({% include %} with a literal name).  The engine drops this
        #: template from its cache when any of them changes, so
        #: inlining stays observationally equivalent to the render-time
        #: lookup the interpreter does.
        self.dependencies: set = set()
        self._inline_stack: List[str] = []

    # ------------------------------------------------------------------
    def compile(self, nodes: List[Node]) -> Callable:
        main = self._compile_function("_render", nodes)
        source = "\n\n".join(self.functions)
        code = compile(source, f"<compiled template {self.template_name!r}>",
                       "exec")
        exec(code, self.namespace)
        for const_name, blocks in self._pending_blocks.items():
            self.namespace[const_name] = {
                name: BlockOverride(body_nodes, self.namespace[fn_name])
                for name, (body_nodes, fn_name) in blocks.items()
            }
        fn = self.namespace[main]
        fn.generated_source = source
        fn.dependencies = frozenset(self.dependencies)
        return fn

    # ------------------------------------------------------------------
    def _name(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _const(self, value: Any, prefix: str = "_C") -> str:
        name = self._name(prefix)
        self.namespace[name] = value
        return name

    @staticmethod
    def _literal(value: Any) -> str:
        if value is None or isinstance(value, (str, int, float, bool)):
            return repr(value)
        raise CompileUnsupported(f"non-literal constant {value!r}")

    def _compile_function(self, kind: str, nodes: List[Node]) -> str:
        name = self._name(kind)
        w = _Writer()
        saved_locals = self._locals
        self._locals = {}  # a fresh function has no static bindings
        try:
            self._emit_nodes(w, nodes)
        finally:
            self._locals = saved_locals
        # Hoist only the helpers the body actually uses; a small
        # included template is called once per loop iteration and the
        # preamble is per-call overhead.
        preamble = []
        for binding, needle in (
            ("_append = parts.append", "_append("),
            ("_get = context.get", "_get("),
            ("_autoescape = context.autoescape", "_autoescape"),
            # push()/pop() mutate the same list object, so one hoist
            # stays valid across scope changes.
            ("_stack = context._stack", "_stack"),
        ):
            if any(needle in line for line in w.lines):
                preamble.append("    " + binding)
        body = preamble + (w.lines or ["    pass"])
        self.functions.append(
            f"def {name}(context, parts):\n" + "\n".join(body)
        )
        return name

    # ------------------------------------------------------------------
    def _emit_nodes(self, w: _Writer, nodes: List[Node]) -> None:
        # Pre-join adjacent literal runs into a single append.
        text_run: List[str] = []

        def flush() -> None:
            if text_run:
                merged = "".join(text_run)
                if merged:
                    w(f"_append({self._literal(merged)})")
                text_run.clear()

        for node in nodes:
            if type(node) is TextNode:
                text_run.append(node.text)
                continue
            flush()
            self._emit_node(w, node)
        flush()

    def _emit_node(self, w: _Writer, node: Node) -> None:
        if type(node) is VariableNode:
            self._emit_variable(w, node)
        elif type(node) is ForNode:
            self._emit_for(w, node)
        elif type(node) is IfNode:
            self._emit_if(w, node)
        elif type(node) is WithNode:
            self._emit_with(w, node)
        elif type(node) is IncludeNode:
            self._emit_include(w, node)
        elif type(node) is BlockNode:
            self._emit_block(w, node)
        elif type(node) is ExtendsNode:
            self._emit_extends(w, node)
        elif type(node) is CacheNode:
            self._emit_cache(w, node)
        else:
            raise CompileUnsupported(
                f"cannot lower node type {type(node).__name__}"
            )

    def _emit_body(self, w: _Writer, nodes: List[Node]) -> None:
        """A nodes list as an indented suite (``pass`` when empty)."""
        before = len(w.lines)
        self._emit_nodes(w, nodes)
        if len(w.lines) == before:
            w("pass")

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _emit_lookup(self, w: _Writer, dotted: str) -> str:
        """Lower ``context.resolve(dotted)``; the temp may hold MISSING.

        When the first segment is a static binding of the current
        function, the scope-stack scan is skipped entirely: the value
        comes from the Python local and the remaining segments apply
        ``_step`` plus the final zero-argument-callable rule, exactly
        as :meth:`Context.resolve` does.
        """
        value = self._name("_v")
        first, _, rest = dotted.partition(".")
        segments = rest.split(".") if rest else []
        local = self._locals.get(first)
        if local is not None:
            w(f"{value} = {local}")
            guard_first = False  # a bound local is never MISSING
        else:
            # Inline Context.resolve's scope scan: newest scope first,
            # stopping at the first scope containing the name.
            scope = self._name("_sc")
            w(f"{value} = _MISSING")
            w(f"for {scope} in reversed(_stack):")
            w(f"    if {first!r} in {scope}:")
            w(f"        {value} = {scope}[{first!r}]")
            w("        break")
            guard_first = True
        for position, segment in enumerate(segments):
            if position or guard_first:
                w(f"if {value} is not _MISSING:")
                w.indent()
                self._emit_step(w, value, segment)
                w.dedent()
            else:
                self._emit_step(w, value, segment)
        w(f"if {value} is not _MISSING and callable({value}):")
        w("    try:")
        w(f"        {value} = {value}()")
        w("    except TypeError:")
        w(f"        {value} = _MISSING")
        return value

    def _emit_step(self, w: _Writer, value: str, segment: str) -> None:
        """One dotted-lookup step, with the dict case (the common
        data-dict shape) inlined; everything else defers to ``_step``."""
        w(f"if {value}.__class__ is dict:")
        w(f"    {value} = {value}.get({segment!r}, _MISSING)")
        w(f"    if {value} is not _MISSING and callable({value}):")
        w(f"        {value} = {value}()")
        w("else:")
        w(f"    {value} = _step({value}, {segment!r})")

    def _emit_expression(self, w: _Writer, expr: FilterExpression,
                         default_code: str) -> str:
        """Lower ``expr.resolve(context, default=<default_code>)``;
        returns the temp holding the value."""
        base = expr._base
        kind = getattr(base, "operand_kind", None)
        if kind == "literal":
            value = self._name("_v")
            w(f"{value} = {self._literal(base.operand_value)}")
        elif kind == "variable":
            value = self._emit_lookup(w, base.operand_name)
            w(f"if {value} is _MISSING:")
            if expr._filters:
                w(f"    {value} = None")
            else:
                w(f"    {value} = {default_code}")
        else:
            raise CompileUnsupported(f"opaque operand in {expr.expression!r}")

        for name, func, arg in expr._filters:
            arg_code = self._emit_filter_arg(w, expr, arg)
            func_name = self._const(func, "_F")
            prefix = self._literal(
                f"filter {name!r} failed on {expr.expression!r}: "
            )
            w("try:")
            w(f"    {value} = {func_name}({value}, {arg_code})")
            w("except (ValueError, TypeError) as _exc:")
            w(f"    raise _TemplateRenderError({prefix} + str(_exc))")
        return value

    def _emit_filter_arg(self, w: _Writer, expr: FilterExpression,
                         arg) -> str:
        if arg is None:
            return "None"
        kind = getattr(arg, "operand_kind", None)
        if kind == "literal":
            # The interpreter stringifies non-str arguments at each
            # call; for literals that folds to a compile-time constant.
            literal = arg.operand_value
            arg_str = literal if isinstance(literal, str) else str(literal)
            return self._literal(arg_str)
        if kind == "variable":
            name = self._emit_lookup(w, arg.operand_name)
            w(f"if {name} is _MISSING:")
            w(f"    {name} = None")
            w(f"elif not isinstance({name}, str):")
            w(f"    {name} = str({name})")
            return name
        raise CompileUnsupported(f"opaque filter arg in {expr.expression!r}")

    # ------------------------------------------------------------------
    # Node lowering
    # ------------------------------------------------------------------
    def _emit_variable(self, w: _Writer, node: VariableNode) -> None:
        value = self._emit_expression(w, node.expression, "''")
        w(f"if {value} is None:")
        w("    _append('None')")
        w(f"elif _autoescape and not isinstance({value}, _Safe):")
        # Exact-str values (the overwhelmingly common case) escape
        # inline; everything else goes through escape_html, which
        # stringifies first — identical output either way.
        w(f"    if {value}.__class__ is str:")
        w(f"        _append({value}.replace('&', '&amp;')"
          f".replace('<', '&lt;').replace('>', '&gt;')"
          f".replace('\"', '&quot;').replace(\"'\", '&#39;'))")
        # str() of an int or float never contains an HTML special.
        w(f"    elif {value}.__class__ is int or {value}.__class__ is float:")
        w(f"        _append(str({value}))")
        w("    else:")
        w(f"        _append(_escape({value}))")
        w("else:")
        w(f"    _append({value} if isinstance({value}, str) else str({value}))")

    def _emit_for(self, w: _Writer, node: ForNode) -> None:
        raw = self._emit_expression(w, node.iterable, "None")
        items = self._name("_items")
        not_iterable = self._literal(
            f"{node.iterable.expression!r} is not iterable in {{% for %}}"
        )
        w(f"if {raw} is None:")
        w(f"    {items} = []")
        w("else:")
        w("    try:")
        w(f"        {items} = list({raw})")
        w("    except TypeError:")
        w(f"        raise _TemplateRenderError({not_iterable})")
        w(f"if not {items}:")
        w.indent()
        self._emit_body(w, node.empty_body)
        w.dedent()
        w("else:")
        w.indent()
        parent = self._name("_parent")
        total = self._name("_total")
        scope = self._name("_scope")
        index = self._name("_i")
        item = self._name("_item")
        loop_info = self._name("_fl")
        w(f"{parent} = _get('forloop')")
        w(f"{total} = len({items})")
        w("context.push()")
        w("try:")
        w.indent()
        w(f"{scope} = _stack[-1]")
        w(f"for {index}, {item} in enumerate({items}):")
        w.indent()
        w(f"{loop_info} = _ForLoop({index}, {total}, {parent})")
        w(f"{scope}['forloop'] = {loop_info}")
        bound = self._emit_loop_bind(w, node.loop_vars, scope, item)
        # A loop variable literally named "forloop" shadows the loop
        # metadata, as it does in the interpreter's scope dict.
        bound.setdefault("forloop", loop_info)
        saved_locals = self._locals
        self._locals = {**saved_locals, **bound}
        try:
            self._emit_body(w, node.body)
        finally:
            self._locals = saved_locals
        w.dedent()
        w.dedent()
        w("finally:")
        w("    context.pop()")
        w.dedent()

    def _emit_loop_bind(self, w: _Writer, loop_vars: List[str],
                        scope: str, item: str) -> Dict[str, str]:
        """Bind loop variables into the scope dict *and* Python locals;
        returns the name -> local map for static resolution."""
        if len(loop_vars) == 1:
            w(f"{scope}[{loop_vars[0]!r}] = {item}")
            return {loop_vars[0]: item}
        unpacked = self._name("_u")
        cannot = self._literal(f"cannot unpack non-sequence into {loop_vars!r}")
        tail = self._literal(
            f" values into {len(loop_vars)} loop variables {loop_vars!r}"
        )
        w("try:")
        w(f"    {unpacked} = tuple({item})")
        w("except TypeError:")
        w(f"    raise _TemplateRenderError({cannot})")
        w(f"if len({unpacked}) != {len(loop_vars)}:")
        w("    raise _TemplateRenderError(")
        w(f"        'cannot unpack ' + str(len({unpacked})) + {tail})")
        bound: Dict[str, str] = {}
        for position, var in enumerate(loop_vars):
            local = self._name("_lv")
            w(f"{local} = {unpacked}[{position}]")
            w(f"{scope}[{var!r}] = {local}")
            bound[var] = local
        return bound

    def _emit_if(self, w: _Writer, node: IfNode) -> None:
        keyword = "if"
        for condition, body in node.branches:
            cond_name = self._const(condition, "_K")
            w(f"{keyword} {cond_name}.evaluate(context):")
            w.indent()
            self._emit_body(w, body)
            w.dedent()
            keyword = "elif"
        if node.else_body:
            w("else:")
            w.indent()
            self._emit_body(w, node.else_body)
            w.dedent()

    def _emit_with(self, w: _Writer, node: WithNode) -> None:
        w("context.push()")
        w("try:")
        w.indent()
        scope = self._name("_scope")
        w(f"{scope} = _stack[-1]")
        saved_locals = self._locals
        self._locals = dict(saved_locals)
        try:
            for name, expression in node.bindings:
                # Each binding sees the previous ones, as in WithNode.
                value = self._emit_expression(w, expression, "None")
                w(f"{scope}[{name!r}] = {value}")
                self._locals[name] = value
            self._emit_body(w, node.body)
        finally:
            self._locals = saved_locals
        w.dedent()
        w("finally:")
        w("    context.pop()")

    def _emit_include(self, w: _Writer, node: IncludeNode) -> None:
        if node.engine is None:
            raise CompileUnsupported("{% include %} without an engine")
        if self._try_inline_include(w, node):
            return
        name = self._emit_expression(w, node.template_name, "None")
        message = self._literal(
            f"{{% include %}} name {node.template_name.expression!r} "
            f"resolved to nothing"
        )
        engine = self._const(node.engine, "_G")
        w(f"if not {name}:")
        w(f"    raise _TemplateRenderError({message})")
        w(f"{engine}.get_template(str({name})).render_into(context, parts)")

    def _try_inline_include(self, w: _Writer, node: IncludeNode) -> bool:
        """Inline the included template's body when its name is a
        literal, so the caller's static bindings (loop variables) apply
        to the included markup's lookups.  The included template still
        renders against the shared context, exactly as IncludeNode
        does; the engine invalidates this template when a dependency's
        source changes (see ``TemplateEngine.add_source``).  Dynamic
        names, unknown templates, and recursive chains keep the
        render-time lookup."""
        expr = node.template_name
        base = expr._base
        name = getattr(base, "operand_value", None)
        if (expr._filters or getattr(base, "operand_kind", None) != "literal"
                or not isinstance(name, str) or not name
                or name in self._inline_stack):
            return False
        try:
            source = node.engine._load_source(name)
        except TemplateNotFoundError:
            return False  # may be registered later; resolve at render
        # Local import: the parser has no dependency on this module.
        from repro.templates.parser import TemplateParser

        nodes = TemplateParser(source, name, node.engine).parse()
        self.dependencies.add(name)
        self._inline_stack.append(name)
        try:
            self._emit_nodes(w, nodes)
        finally:
            self._inline_stack.pop()
        return True

    def _emit_block(self, w: _Writer, node: BlockNode) -> None:
        overrides = self._name("_ov")
        body = self._name("_b")
        walker = self._name("_n")
        w(f"{overrides} = _get('__blocks__')")
        w(f"{body} = {overrides}.get({node.name!r}) if {overrides} else None")
        w(f"if {body} is None:")
        w.indent()
        self._emit_body(w, node.body)
        w.dedent()
        w(f"elif isinstance({body}, _Override):")
        w(f"    {body}.render_into(context, parts)")
        w("else:")
        w(f"    for {walker} in {body}:")
        w(f"        {walker}.render(context, parts)")

    def _emit_extends(self, w: _Writer, node: ExtendsNode) -> None:
        if node.engine is None:
            raise CompileUnsupported("{% extends %} without an engine")
        blocks_const = self._name("_B")
        self._pending_blocks[blocks_const] = {
            name: (body_nodes, self._compile_function("_block", body_nodes))
            for name, body_nodes in node.blocks.items()
        }
        name = self._emit_expression(w, node.parent_name, "None")
        message = self._literal(
            f"{{% extends %}} name {node.parent_name.expression!r} "
            f"resolved to nothing"
        )
        engine = self._const(node.engine, "_G")
        parent = self._name("_parent_t")
        existing = self._name("_existing")
        merged = self._name("_merged")
        w(f"if not {name}:")
        w(f"    raise _TemplateRenderError({message})")
        w(f"{parent} = {engine}.get_template(str({name}))")
        # Merge: inner (child) overrides win over any already present,
        # exactly as ExtendsNode.render does.
        w(f"{existing} = _get('__blocks__') or {{}}")
        w(f"{merged} = dict({blocks_const})")
        w(f"{merged}.update({existing})")
        w(f"context.push({{'__blocks__': {merged}}})")
        w("try:")
        w(f"    {parent}.render_into(context, parts)")
        w("finally:")
        w("    context.pop()")

    def _emit_cache(self, w: _Writer, node: CacheNode) -> None:
        body_fn = self._compile_function("_cache_body", node.body)
        engine = self._const(node.engine, "_G") if node.engine is not None \
            else "None"
        key = self._const(node.key, "_E")
        timeout = self._const(node.timeout, "_E") if node.timeout is not None \
            else "None"
        vary = self._const(tuple(node.vary), "_E")
        w(f"_render_fragment({engine}, context, parts, {body_fn}, "
          f"{key}, {timeout}, {vary})")
