"""Template lexer: splits source into text, variable, tag, comment tokens."""

from __future__ import annotations

import dataclasses
import enum
import re
from typing import Iterator, List

from repro.templates.errors import TemplateSyntaxError


class TokenType(enum.Enum):
    TEXT = "text"
    VARIABLE = "variable"  # {{ ... }}
    TAG = "tag"            # {% ... %}
    COMMENT = "comment"    # {# ... #}


@dataclasses.dataclass(frozen=True)
class Token:
    type: TokenType
    content: str
    line: int


_TOKEN_SPLIT_RE = re.compile(r"({{.*?}}|{%.*?%}|{#.*?#})", re.DOTALL)
_UNCLOSED_RE = re.compile(r"({{|{%|{#)")

_OPENERS = {
    "{{": ("}}", TokenType.VARIABLE),
    "{%": ("%}", TokenType.TAG),
    "{#": ("#}", TokenType.COMMENT),
}


def tokenize(source: str, template_name: str = "<string>") -> List[Token]:
    """Split template source into a flat token list.

    Line numbers (1-based, counting the token's first character) are
    attached for error reporting.
    """
    tokens: List[Token] = []
    line = 1
    for chunk in _TOKEN_SPLIT_RE.split(source):
        if not chunk:
            continue
        opener = chunk[:2]
        if opener in _OPENERS and chunk.endswith(_OPENERS[opener][0]) and len(chunk) >= 4:
            token_type = _OPENERS[opener][1]
            content = chunk[2:-2].strip()
            if token_type is TokenType.TAG and not content:
                raise TemplateSyntaxError("empty tag", template_name, line)
            if token_type is TokenType.VARIABLE and not content:
                raise TemplateSyntaxError("empty variable tag", template_name, line)
            tokens.append(Token(token_type, content, line))
        else:
            unclosed = _UNCLOSED_RE.search(chunk)
            if unclosed:
                raise TemplateSyntaxError(
                    f"unclosed {unclosed.group(1)!r}",
                    template_name,
                    line + chunk[: unclosed.start()].count("\n"),
                )
            tokens.append(Token(TokenType.TEXT, chunk, line))
        line += chunk.count("\n")
    return tokens


def iter_tag_parts(content: str) -> Iterator[str]:
    """Split a tag's content into space-separated parts, respecting quotes.

    ``include "a b.html"`` yields ``include`` and ``"a b.html"``.
    """
    part = ""
    quote = None
    for ch in content:
        if quote:
            part += ch
            if ch == quote:
                quote = None
        elif ch in "\"'":
            part += ch
            quote = ch
        elif ch.isspace():
            if part:
                yield part
                part = ""
        else:
            part += ch
    if quote:
        raise TemplateSyntaxError(f"unterminated string in tag: {content!r}")
    if part:
        yield part
