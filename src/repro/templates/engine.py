"""Template loading, compilation caching, and rendering."""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, List, Optional

from repro.templates.context import Context
from repro.templates.errors import TemplateNotFoundError
from repro.templates.nodes import Node
from repro.templates.parser import TemplateParser


class Template:
    """A compiled template: render with a data dict or a Context."""

    def __init__(self, source: str, name: str = "<string>", engine=None):
        self.name = name
        self.source = source
        self.nodes: List[Node] = TemplateParser(source, name, engine).parse()

    def render(self, data: Optional[Dict[str, Any]] = None,
               autoescape: bool = True) -> str:
        """Render with a plain data dict (the common handler case)."""
        context = data if isinstance(data, Context) else Context(data, autoescape)
        return self.render_context(context)

    def render_context(self, context: Context) -> str:
        parts: List[str] = []
        for node in self.nodes:
            node.render(context, parts)
        return "".join(parts)


class TemplateEngine:
    """A template loader with a compiled-template cache.

    Templates come either from a directory of files or from an in-memory
    mapping (used heavily in tests and by the TPC-W package, which ships
    its templates as package data).  Compilation happens once per name;
    the cache is thread-safe because in the staged server many rendering
    threads share one engine.
    """

    def __init__(self, directory: Optional[str] = None,
                 sources: Optional[Dict[str, str]] = None):
        self.directory = directory
        self._sources: Dict[str, str] = dict(sources) if sources else {}
        self._cache: Dict[str, Template] = {}
        self._lock = threading.Lock()

    def add_source(self, name: str, source: str) -> None:
        """Register (or replace) an in-memory template."""
        with self._lock:
            self._sources[name] = source
            self._cache.pop(name, None)

    def get_template(self, name: str) -> Template:
        """Load and compile ``name``, consulting the cache first."""
        with self._lock:
            cached = self._cache.get(name)
        if cached is not None:
            return cached
        source = self._load_source(name)
        template = Template(source, name, engine=self)
        with self._lock:
            # A racing thread may have compiled it first; keep the
            # existing entry so includes see a single instance.
            return self._cache.setdefault(name, template)

    def render(self, name: str, data: Optional[Dict[str, Any]] = None) -> str:
        """Convenience: load + render in one call."""
        return self.get_template(name).render(data)

    def invalidate(self, name: Optional[str] = None) -> None:
        """Drop one cached template, or the whole cache."""
        with self._lock:
            if name is None:
                self._cache.clear()
            else:
                self._cache.pop(name, None)

    def _load_source(self, name: str) -> str:
        if name in self._sources:
            return self._sources[name]
        if self.directory is not None:
            path = os.path.normpath(os.path.join(self.directory, name))
            # Refuse path traversal out of the template directory.
            root = os.path.abspath(self.directory)
            if os.path.commonpath([root, os.path.abspath(path)]) == root:
                if os.path.isfile(path):
                    with open(path, "r", encoding="utf-8") as f:
                        return f.read()
        raise TemplateNotFoundError(name)
