"""Template loading, compilation caching, and rendering."""

from __future__ import annotations

import itertools
import os
import threading
from typing import Any, Dict, List, Optional

from repro.templates.compiler import compile_template
from repro.templates.context import Context
from repro.templates.errors import TemplateNotFoundError
from repro.templates.fragcache import FragmentCache, data_signature
from repro.templates.nodes import Node
from repro.templates.parser import TemplateParser


class Template:
    """A compiled template: render with a data dict or a Context.

    With ``compiled`` (the engine default) the node tree is lowered to
    one generated Python function by :mod:`repro.templates.compiler`;
    constructs the compiler can't lower fall back to the interpreting
    node walk.  Both paths produce byte-identical output.
    """

    def __init__(self, source: str, name: str = "<string>", engine=None,
                 compiled: Optional[bool] = None):
        self.name = name
        self.source = source
        self.nodes: List[Node] = TemplateParser(source, name, engine).parse()
        if compiled is None:
            compiled = bool(engine.compiled) if engine is not None else False
        self._render_fn = compile_template(self, engine) if compiled else None
        #: Templates whose source was inlined by the compiler; the
        #: engine cache drops this template when any of them changes.
        self._dependencies = getattr(self._render_fn, "dependencies",
                                     frozenset())
        self._last_use = 0  # LRU stamp maintained by the engine cache

    @property
    def compiled(self) -> bool:
        """True when rendering runs the generated function."""
        return self._render_fn is not None

    def render(self, data: Optional[Dict[str, Any]] = None,
               autoescape: bool = True) -> str:
        """Render with a plain data dict (the common handler case)."""
        context = data if isinstance(data, Context) else Context(data, autoescape)
        return self.render_context(context)

    def render_context(self, context: Context) -> str:
        parts: List[str] = []
        self.render_into(context, parts)
        return "".join(parts)

    def render_into(self, context: Context, parts: List[str]) -> None:
        """Append rendered output to ``parts`` (used by includes and
        inheritance so nested templates keep the compiled fast path)."""
        fn = self._render_fn
        if fn is not None:
            fn(context, parts)
        else:
            for node in self.nodes:
                node.render(context, parts)


class TemplateEngine:
    """A template loader with a bounded compiled-template cache.

    Templates come either from a directory of files or from an in-memory
    mapping (used heavily in tests and by the TPC-W package, which ships
    its templates as package data).  Compilation happens once per name.

    The cache is shared by many rendering threads in the staged server,
    so the hot path is lock-free: a CPython dict read is atomic under
    the GIL, and the lock guards only compile-and-insert (plus explicit
    invalidation).  The cache is bounded by ``cache_size`` with
    least-recently-used eviction; hit/miss/eviction counters are
    approximate under contention (racy increments) but exact
    single-threaded.

    ``compiled`` selects the generated-code render path (default on;
    automatic per-template fallback keeps behaviour identical).  A
    :class:`~repro.templates.fragcache.FragmentCache` can be attached —
    at construction or via :meth:`enable_fragment_cache` — to activate
    ``{% cache %}`` tags and the :meth:`render_cached` page cache; it
    is off by default.
    """

    def __init__(self, directory: Optional[str] = None,
                 sources: Optional[Dict[str, str]] = None,
                 compiled: bool = True,
                 cache_size: Optional[int] = 256,
                 fragment_cache: Optional[FragmentCache] = None):
        if cache_size is not None and cache_size < 1:
            raise ValueError("cache_size must be >= 1 (or None for unbounded)")
        self.directory = directory
        self.compiled = compiled
        self.cache_size = cache_size
        self.fragment_cache = fragment_cache
        #: Optional :class:`repro.faults.plan.FaultPlan` consulted on
        #: every :meth:`render` (slow render / render-time crash).
        #: Assigned by the owning server.
        self.faults = None
        self._sources: Dict[str, str] = dict(sources) if sources else {}
        self._cache: Dict[str, Template] = {}
        self._lock = threading.Lock()
        self._use_counter = itertools.count(1)  # thread-safe in CPython
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._compile_fallbacks = 0

    def add_source(self, name: str, source: str) -> None:
        """Register (or replace) an in-memory template."""
        with self._lock:
            self._sources[name] = source
            self._drop_locked(name)

    def _drop_locked(self, name: str) -> None:
        """Drop ``name`` and every cached template that compile-time
        inlined it (call with the lock held)."""
        self._cache.pop(name, None)
        dependents = [cached_name for cached_name, template
                      in self._cache.items()
                      if name in template._dependencies]
        for cached_name in dependents:
            del self._cache[cached_name]

    def get_template(self, name: str) -> Template:
        """Load and compile ``name``, consulting the cache first.

        The hit path takes no lock: dict reads are atomic in CPython,
        and the LRU stamp is a single attribute store.
        """
        cached = self._cache.get(name)
        if cached is not None:
            cached._last_use = next(self._use_counter)
            self._hits += 1
            return cached
        self._misses += 1
        source = self._load_source(name)
        template = Template(source, name, engine=self)
        if self.compiled and template._render_fn is None:
            self._compile_fallbacks += 1
        with self._lock:
            # A racing thread may have compiled it first; keep the
            # existing entry so includes see a single instance.
            existing = self._cache.get(name)
            if existing is not None:
                return existing
            if self.cache_size is not None:
                while len(self._cache) >= self.cache_size:
                    oldest = min(self._cache,
                                 key=lambda key: self._cache[key]._last_use)
                    del self._cache[oldest]
                    self._evictions += 1
            template._last_use = next(self._use_counter)
            self._cache[name] = template
            return template

    def render(self, name: str, data: Optional[Dict[str, Any]] = None) -> str:
        """Convenience: load + render in one call."""
        if self.faults is not None:
            self.faults.on_render(name)
        return self.get_template(name).render(data)

    # ------------------------------------------------------------------
    # Fragment / page cache
    # ------------------------------------------------------------------
    def enable_fragment_cache(self, maxsize: int = 512,
                              default_timeout: Optional[float] = None,
                              clock=None) -> FragmentCache:
        """Attach (and return) a fragment cache, activating both the
        ``{% cache %}`` tag and :meth:`render_cached`."""
        self.fragment_cache = FragmentCache(
            maxsize=maxsize, default_timeout=default_timeout, clock=clock
        )
        return self.fragment_cache

    def render_cached(self, name: str, data: Optional[Dict[str, Any]] = None,
                      *, key: Any = None,
                      timeout: Optional[float] = None) -> str:
        """Render via the page cache, keyed ``(template, data-signature)``.

        Intended for static-ish pages/fragments (promotional listings,
        best-seller sidebars): identical ``(name, data)`` pairs return
        the cached HTML without touching the render path.  ``key``
        overrides the derived key; without a fragment cache this is
        plain :meth:`render`.
        """
        cache = self.fragment_cache
        if cache is None:
            return self.render(name, data)
        if key is None:
            payload = data.flatten() if isinstance(data, Context) else data
            key = (name, data_signature(payload))
        cached = cache.get(key)
        if cached is not None:
            return cached
        html = self.render(name, data)
        cache.put(key, html, timeout)
        return html

    # ------------------------------------------------------------------
    def invalidate(self, name: Optional[str] = None) -> None:
        """Drop one cached template (plus anything that compile-time
        inlined it), or the whole cache."""
        with self._lock:
            if name is None:
                self._cache.clear()
            else:
                self._drop_locked(name)

    def cache_stats(self) -> Dict[str, Any]:
        """Template-cache observability (counters are approximate under
        heavy contention; see class docstring)."""
        return {
            "size": len(self._cache),
            "capacity": self.cache_size,
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "compile_fallbacks": self._compile_fallbacks,
        }

    def _load_source(self, name: str) -> str:
        if name in self._sources:
            return self._sources[name]
        if self.directory is not None:
            path = os.path.normpath(os.path.join(self.directory, name))
            # Refuse path traversal out of the template directory.
            root = os.path.abspath(self.directory)
            if os.path.commonpath([root, os.path.abspath(path)]) == root:
                if os.path.isfile(path):
                    with open(path, "r", encoding="utf-8") as f:
                        return f.read()
        raise TemplateNotFoundError(name)
