"""Template engine error types."""

from __future__ import annotations

from typing import Optional


class TemplateError(Exception):
    """Base class for all template engine errors."""


class TemplateSyntaxError(TemplateError):
    """Raised at compile time for malformed template source."""

    def __init__(self, message: str, template_name: Optional[str] = None,
                 line: Optional[int] = None):
        location = ""
        if template_name:
            location += f" in {template_name!r}"
        if line is not None:
            location += f" at line {line}"
        super().__init__(f"{message}{location}")
        self.template_name = template_name
        self.line = line


class TemplateRenderError(TemplateError):
    """Raised at render time (bad filter argument, include failure, ...)."""


class TemplateNotFoundError(TemplateError):
    """The loader could not find the named template."""

    def __init__(self, name: str):
        super().__init__(f"template not found: {name!r}")
        self.name = name
