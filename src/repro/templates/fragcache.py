"""Bounded LRU cache for rendered template fragments and whole pages.

Vcache-style (*Caching Dynamic Documents*): most of a dynamic page is
static markup that only changes when the underlying data does, so the
render stage can skip re-rendering it.  This cache sits on the render
stage — the pool the paper separates out — and stores finished HTML
keyed however the caller likes:

- the engine-level API (:meth:`repro.templates.engine.TemplateEngine.
  render_cached`) keys whole pages by ``(template_name,
  data_signature(data))``;
- the ``{% cache key timeout %}`` tag keys fragments by its explicit
  key plus vary-on values.

The cache is strictly opt-in: a :class:`TemplateEngine` consults it
only after ``enable_fragment_cache()`` (or an instance passed at
construction), and the ``{% cache %}`` tag is transparent without one.
Entries carry an optional timeout, the store is bounded with
oldest-first (LRU) eviction, and every outcome — hit, miss, eviction,
expiration, invalidation — is counted for observability.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.templates.errors import TemplateRenderError


def data_signature(data: Any) -> Hashable:
    """A stable, hashable signature of a handler's data dict.

    Dicts become key-sorted tuples, sequences become tuples, sets are
    sorted for determinism, and anything non-primitive falls back to
    its ``repr``.  Two calls with equal data produce equal signatures,
    which is what makes ``(template, data-signature)`` a usable page
    cache key.
    """
    if isinstance(data, dict):
        return tuple(sorted(
            ((str(key), data_signature(value)) for key, value in data.items()),
            key=lambda pair: pair[0],
        ))
    if isinstance(data, (list, tuple)):
        return tuple(data_signature(value) for value in data)
    if isinstance(data, (set, frozenset)):
        return ("#set",) + tuple(sorted(repr(data_signature(v)) for v in data))
    if data is None or isinstance(data, (str, int, float, bool, bytes)):
        return data
    return repr(data)


class FragmentCache:
    """A thread-safe, bounded, timeout-aware LRU cache of rendered HTML."""

    def __init__(self, maxsize: int = 512,
                 default_timeout: Optional[float] = None,
                 clock: Optional[Callable[[], float]] = None):
        if maxsize < 1:
            raise ValueError("FragmentCache maxsize must be >= 1")
        self.maxsize = maxsize
        self.default_timeout = default_timeout
        self._clock = clock if clock is not None else time.monotonic
        self._data: "OrderedDict[Hashable, Tuple[str, Optional[float]]]" = \
            OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Optional[str] = None) -> Optional[str]:
        """Return the cached fragment, or ``default`` on miss/expiry."""
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                self.misses += 1
                return default
            value, expires = entry
            if expires is not None and self._clock() >= expires:
                del self._data[key]
                self.expirations += 1
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def get_stale(self, key: Hashable,
                  default: Optional[str] = None) -> Optional[str]:
        """Return the cached fragment even if expired (degraded serving).

        Vcache's argument: an out-of-date document beats no document
        when the backend is unavailable.  Unlike :meth:`get`, an
        expired entry is returned *and retained* — the circuit breaker
        will close eventually and the normal path will refresh it.
        """
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return entry[0]

    def put(self, key: Hashable, value: str,
            timeout: Optional[float] = None) -> None:
        """Store a fragment; ``timeout`` seconds (None = no expiry,
        falling back to ``default_timeout``)."""
        if timeout is None:
            timeout = self.default_timeout
        expires = None if timeout is None else self._clock() + float(timeout)
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = (value, expires)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def invalidate(self, key: Optional[Hashable] = None,
                   prefix: Optional[Any] = None) -> int:
        """Drop one entry, a prefix family, or (no arguments) everything.

        ``prefix`` matches tuple keys on their first element and string
        keys by ``startswith`` — so ``invalidate(prefix="home.html")``
        drops every cached variant of one template.  Returns the number
        of entries removed.
        """
        with self._lock:
            if key is None and prefix is None:
                removed = len(self._data)
                self._data.clear()
            else:
                removed = 0
                if key is not None and key in self._data:
                    del self._data[key]
                    removed += 1
                if prefix is not None:
                    doomed = [k for k in self._data if _matches_prefix(k, prefix)]
                    for k in doomed:
                        del self._data[k]
                    removed += len(doomed)
            self.invalidations += removed
            return removed

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        """Peek without touching LRU order or counters."""
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                return False
            value, expires = entry
            return expires is None or self._clock() < expires

    def stats(self) -> Dict[str, float]:
        with self._lock:
            size = len(self._data)
        total = self.hits + self.misses
        return {
            "size": size,
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
            "hit_rate": (self.hits / total) if total else 0.0,
        }


def _matches_prefix(key: Hashable, prefix: Any) -> bool:
    if isinstance(key, tuple) and key and key[0] == prefix:
        return True
    return isinstance(key, str) and isinstance(prefix, str) \
        and key.startswith(prefix)


def render_fragment(engine, context, parts: List[str],
                    body_fn: Callable[[Any, List[str]], None],
                    key_expr, timeout_expr, vary_exprs) -> None:
    """Shared ``{% cache %}`` semantics for both render paths.

    The interpreter's :class:`~repro.templates.nodes.CacheNode` and the
    compiler's generated code both funnel through here, so the tag
    behaves identically — including when no cache is configured, in
    which case the body simply renders in place.
    """
    cache = getattr(engine, "fragment_cache", None) if engine is not None \
        else None
    if cache is None:
        body_fn(context, parts)
        return
    key_value = key_expr.resolve(context, default=None)
    vary = tuple(str(expr.resolve(context, default=None))
                 for expr in vary_exprs)
    key = ("#tag", str(key_value), vary)
    cached = cache.get(key)
    if cached is not None:
        parts.append(cached)
        return
    sub: List[str] = []
    body_fn(context, sub)
    fragment = "".join(sub)
    timeout = None
    if timeout_expr is not None:
        raw = timeout_expr.resolve(context, default=None)
        if raw is not None:
            try:
                timeout = float(raw)
            except (TypeError, ValueError):
                raise TemplateRenderError(
                    f"{{% cache %}} timeout {raw!r} is not a number"
                )
    cache.put(key, fragment, timeout)
    parts.append(fragment)
