"""Render context: a stack of scopes with Django-style dotted lookup."""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional


class _Missing:
    """Sentinel for a failed lookup (None is a legitimate value)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<missing>"


MISSING = _Missing()


class Context:
    """A stack of variable scopes.

    The outermost scope is the data dict the handler returned; block
    tags (``{% for %}``) push and pop inner scopes.  Dotted lookup
    resolves each segment as, in order: dict key, list/tuple index (if
    the segment is an integer), then attribute; callables found along
    the way are called with no arguments (Django semantics).
    """

    def __init__(self, data: Optional[Dict[str, Any]] = None, autoescape: bool = True):
        self._stack: List[Dict[str, Any]] = [dict(data) if data else {}]
        self.autoescape = autoescape

    def push(self, scope: Optional[Dict[str, Any]] = None) -> None:
        self._stack.append(dict(scope) if scope else {})

    def pop(self) -> None:
        if len(self._stack) == 1:
            raise IndexError("cannot pop the root context scope")
        self._stack.pop()

    def __enter__(self) -> "Context":
        self.push()
        return self

    def __exit__(self, *exc_info) -> None:
        self.pop()

    def __setitem__(self, name: str, value: Any) -> None:
        self._stack[-1][name] = value

    def __contains__(self, name: str) -> bool:
        return any(name in scope for scope in reversed(self._stack))

    def get(self, name: str, default: Any = None) -> Any:
        for scope in reversed(self._stack):
            if name in scope:
                return scope[name]
        return default

    def resolve(self, dotted: str) -> Any:
        """Resolve ``a.b.0.c``; returns MISSING if any step fails."""
        first, _, rest = dotted.partition(".")
        value: Any = MISSING
        for scope in reversed(self._stack):
            if first in scope:
                value = scope[first]
                break
        if value is MISSING:
            return MISSING
        for segment in _segments(rest):
            value = _step(value, segment)
            if value is MISSING:
                return MISSING
        if callable(value):
            try:
                value = value()
            except TypeError:
                return MISSING
        return value

    def flatten(self) -> Dict[str, Any]:
        """All visible names, inner scopes shadowing outer ones."""
        merged: Dict[str, Any] = {}
        for scope in self._stack:
            merged.update(scope)
        return merged


def _segments(rest: str) -> Iterator[str]:
    if not rest:
        return
    for segment in rest.split("."):
        yield segment


def _step(value: Any, segment: str) -> Any:
    """One dotted-lookup step: key, then index, then attribute."""
    # Dict key first (covers the common data-dict case).
    if isinstance(value, dict):
        if segment in value:
            found = value[segment]
            return found() if callable(found) else found
        return MISSING
    # Integer index into a sequence.
    if segment.lstrip("-").isdigit():
        try:
            return value[int(segment)]
        except (IndexError, KeyError, TypeError):
            return MISSING
    # Attribute access, refusing underscore-private names.
    if segment.startswith("_"):
        return MISSING
    try:
        found = getattr(value, segment)
    except AttributeError:
        return MISSING
    return found
