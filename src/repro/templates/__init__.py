"""From-scratch Django-style template engine.

Supports the constructs the paper's TPC-W templates need (and the ones
any Django template of the era would use):

- Variable tags with dotted lookup and filters:
  ``{{ item.title|upper }}``, ``{{ price|floatformat:2 }}``.
- Block tags: ``{% for x in seq %} ... {% empty %} ... {% endfor %}``
  (with the ``forloop`` context object), ``{% if %}/{% elif %}/{% else
  %}`` with comparisons and ``and``/``or``/``not``, ``{% include %}``.
- Comments: ``{# ... #}`` and ``{% comment %} ... {% endcomment %}``.
- HTML autoescaping with a ``safe`` filter opt-out.

Templates compile to a node tree once and are cached by the
:class:`TemplateEngine` loader; rendering walks the tree with a
:class:`Context`.  Rendering is a pure function of (template, data),
which is exactly the property the paper's staged design exploits: a
handler can return ``("name.html", data)`` and any template-rendering
thread can finish the job.
"""

from repro.templates.compiler import compile_template
from repro.templates.context import Context
from repro.templates.engine import Template, TemplateEngine
from repro.templates.errors import (
    TemplateError,
    TemplateNotFoundError,
    TemplateRenderError,
    TemplateSyntaxError,
)
from repro.templates.filters import FILTERS, register_filter
from repro.templates.fragcache import FragmentCache, data_signature

__all__ = [
    "Context",
    "FragmentCache",
    "Template",
    "TemplateEngine",
    "TemplateError",
    "TemplateNotFoundError",
    "TemplateRenderError",
    "TemplateSyntaxError",
    "FILTERS",
    "compile_template",
    "data_signature",
    "register_filter",
]
