"""Template parser: token stream → node tree."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.templates.errors import TemplateSyntaxError
from repro.templates.lexer import Token, TokenType, iter_tag_parts, tokenize
from repro.templates.nodes import (
    BlockNode,
    CacheNode,
    Condition,
    ExtendsNode,
    FilterExpression,
    ForNode,
    IfNode,
    IncludeNode,
    Node,
    TextNode,
    VariableNode,
    WithNode,
)


class TemplateParser:
    """Recursive-descent parser over the lexer's token list.

    ``engine`` is needed only to compile ``{% include %}`` nodes, which
    resolve included templates through the engine's loader at render
    time (so includes pick up cache updates).
    """

    def __init__(self, source: str, template_name: str = "<string>", engine=None):
        self.template_name = template_name
        self.engine = engine
        self._tokens = tokenize(source, template_name)
        self._pos = 0

    def parse(self) -> List[Node]:
        nodes, terminator = self._parse_until(frozenset())
        assert terminator is None
        return nodes

    # ------------------------------------------------------------------
    def _parse_until(self, stop_tags: frozenset) -> Tuple[List[Node], Optional[Token]]:
        """Parse nodes until one of ``stop_tags`` (returned) or EOF (None)."""
        nodes: List[Node] = []
        while self._pos < len(self._tokens):
            token = self._tokens[self._pos]
            self._pos += 1
            if token.type is TokenType.TEXT:
                nodes.append(TextNode(token.content))
            elif token.type is TokenType.COMMENT:
                continue
            elif token.type is TokenType.VARIABLE:
                nodes.append(
                    VariableNode(FilterExpression(token.content, self.template_name))
                )
            else:  # TAG
                parts = list(iter_tag_parts(token.content))
                tag = parts[0]
                if tag in stop_tags:
                    return nodes, token
                nodes.append(self._parse_tag(tag, parts, token))
        if stop_tags:
            raise TemplateSyntaxError(
                f"unexpected end of template; expected one of "
                f"{sorted(stop_tags)}",
                self.template_name,
            )
        return nodes, None

    def _parse_tag(self, tag: str, parts: List[str], token: Token) -> Node:
        if tag == "for":
            return self._parse_for(parts, token)
        if tag == "if":
            return self._parse_if(parts, token)
        if tag == "include":
            return self._parse_include(parts, token)
        if tag == "with":
            return self._parse_with(parts, token)
        if tag == "block":
            return self._parse_block(parts, token)
        if tag == "extends":
            return self._parse_extends(parts, token)
        if tag == "cache":
            return self._parse_cache(parts, token)
        if tag == "comment":
            self._parse_until(frozenset({"endcomment"}))
            return TextNode("")
        raise TemplateSyntaxError(
            f"unknown tag {tag!r}", self.template_name, token.line
        )

    def _parse_block(self, parts: List[str], token: Token) -> BlockNode:
        if len(parts) != 2 or not parts[1].isidentifier():
            raise TemplateSyntaxError(
                "{% block %} takes exactly one name",
                self.template_name,
                token.line,
            )
        body, _ = self._parse_until(frozenset({"endblock"}))
        return BlockNode(parts[1], body)

    def _parse_extends(self, parts: List[str], token: Token) -> ExtendsNode:
        if len(parts) != 2:
            raise TemplateSyntaxError(
                "{% extends %} takes exactly one argument",
                self.template_name,
                token.line,
            )
        if self.engine is None:
            raise TemplateSyntaxError(
                "{% extends %} requires an engine-loaded template",
                self.template_name,
                token.line,
            )
        # Consume the remainder of the template, keeping only blocks.
        rest, _ = self._parse_until(frozenset())
        blocks = {}
        for node in rest:
            if isinstance(node, BlockNode):
                if node.name in blocks:
                    raise TemplateSyntaxError(
                        f"duplicate block {node.name!r} in child template",
                        self.template_name,
                        token.line,
                    )
                blocks[node.name] = node.body
        return ExtendsNode(
            FilterExpression(parts[1], self.template_name), blocks, self.engine
        )

    def _parse_for(self, parts: List[str], token: Token) -> ForNode:
        # {% for a[, b, ...] in iterable %}
        if "in" not in parts:
            raise TemplateSyntaxError(
                "malformed {% for %}: missing 'in'", self.template_name, token.line
            )
        in_index = len(parts) - 1 - parts[::-1].index("in")
        raw_vars = parts[1:in_index]
        iterable_parts = parts[in_index + 1:]
        if not raw_vars or len(iterable_parts) != 1:
            raise TemplateSyntaxError(
                f"malformed {{% for %}}: {' '.join(parts)!r}",
                self.template_name,
                token.line,
            )
        loop_vars: List[str] = []
        for raw in raw_vars:
            loop_vars.extend(v for v in raw.split(",") if v)
        for var in loop_vars:
            if not var.isidentifier():
                raise TemplateSyntaxError(
                    f"invalid loop variable {var!r}", self.template_name, token.line
                )
        iterable = FilterExpression(iterable_parts[0], self.template_name)
        body, terminator = self._parse_until(frozenset({"empty", "endfor"}))
        empty_body: List[Node] = []
        if terminator is not None and terminator.content.strip() == "empty":
            empty_body, terminator = self._parse_until(frozenset({"endfor"}))
        return ForNode(loop_vars, iterable, body, empty_body)

    def _parse_if(self, parts: List[str], token: Token) -> IfNode:
        branches = []
        condition = Condition(parts[1:], self.template_name)
        stop = frozenset({"elif", "else", "endif"})
        body, terminator = self._parse_until(stop)
        branches.append((condition, body))
        while terminator is not None:
            terminator_parts = list(iter_tag_parts(terminator.content))
            kind = terminator_parts[0]
            if kind == "endif":
                return IfNode(branches)
            if kind == "elif":
                condition = Condition(terminator_parts[1:], self.template_name)
                body, terminator = self._parse_until(stop)
                branches.append((condition, body))
            else:  # else
                else_body, terminator = self._parse_until(frozenset({"endif"}))
                return IfNode(branches, else_body)
        raise TemplateSyntaxError(  # pragma: no cover - _parse_until raises first
            "missing {% endif %}", self.template_name, token.line
        )

    def _parse_include(self, parts: List[str], token: Token) -> IncludeNode:
        if len(parts) != 2:
            raise TemplateSyntaxError(
                "{% include %} takes exactly one argument",
                self.template_name,
                token.line,
            )
        if self.engine is None:
            raise TemplateSyntaxError(
                "{% include %} requires an engine-loaded template",
                self.template_name,
                token.line,
            )
        return IncludeNode(
            FilterExpression(parts[1], self.template_name), self.engine
        )

    def _parse_cache(self, parts: List[str], token: Token) -> CacheNode:
        # {% cache key [timeout] [vary ...] %}
        if len(parts) < 2:
            raise TemplateSyntaxError(
                "{% cache %} requires a key (and optionally a timeout "
                "and vary-on expressions)",
                self.template_name,
                token.line,
            )
        key = FilterExpression(parts[1], self.template_name)
        timeout = None
        if len(parts) >= 3:
            timeout = FilterExpression(parts[2], self.template_name)
        vary = [FilterExpression(part, self.template_name)
                for part in parts[3:]]
        body, _ = self._parse_until(frozenset({"endcache"}))
        return CacheNode(key, timeout, vary, body, self.engine)

    def _parse_with(self, parts: List[str], token: Token) -> WithNode:
        if len(parts) < 2:
            raise TemplateSyntaxError(
                "{% with %} requires at least one name=value binding",
                self.template_name,
                token.line,
            )
        bindings = []
        for part in parts[1:]:
            if "=" not in part:
                raise TemplateSyntaxError(
                    f"malformed {{% with %}} binding {part!r}",
                    self.template_name,
                    token.line,
                )
            name, raw_expr = part.split("=", 1)
            if not name.isidentifier():
                raise TemplateSyntaxError(
                    f"invalid {{% with %}} name {name!r}",
                    self.template_name,
                    token.line,
                )
            bindings.append((name, FilterExpression(raw_expr, self.template_name)))
        body, _ = self._parse_until(frozenset({"endwith"}))
        return WithNode(bindings, body)
