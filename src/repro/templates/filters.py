"""Built-in template filters and the HTML-escaping machinery."""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional


class SafeString(str):
    """A string already escaped (or declared safe); never re-escaped."""


def escape_html(value: Any) -> str:
    """Escape &, <, >, quotes.  Safe strings pass through untouched."""
    if isinstance(value, SafeString):
        return value
    text = value if isinstance(value, str) else str(value)
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
        .replace("'", "&#39;")
    )


FILTERS: Dict[str, Callable[..., Any]] = {}


def register_filter(name: str, func: Optional[Callable[..., Any]] = None):
    """Register a filter, usable as a decorator or a direct call."""

    def decorator(f: Callable[..., Any]) -> Callable[..., Any]:
        FILTERS[name] = f
        return f

    if func is not None:
        return decorator(func)
    return decorator


def _require_no_arg(name: str, arg: Optional[str]) -> None:
    if arg is not None:
        raise ValueError(f"filter {name!r} takes no argument")


@register_filter("upper")
def _upper(value: Any, arg: Optional[str] = None) -> str:
    _require_no_arg("upper", arg)
    return str(value).upper()


@register_filter("lower")
def _lower(value: Any, arg: Optional[str] = None) -> str:
    _require_no_arg("lower", arg)
    return str(value).lower()


@register_filter("capfirst")
def _capfirst(value: Any, arg: Optional[str] = None) -> str:
    _require_no_arg("capfirst", arg)
    text = str(value)
    return text[:1].upper() + text[1:]


@register_filter("title")
def _title(value: Any, arg: Optional[str] = None) -> str:
    _require_no_arg("title", arg)
    return str(value).title()


@register_filter("length")
def _length(value: Any, arg: Optional[str] = None) -> int:
    _require_no_arg("length", arg)
    try:
        return len(value)
    except TypeError:
        return 0


@register_filter("default")
def _default(value: Any, arg: Optional[str] = None) -> Any:
    if arg is None:
        raise ValueError("filter 'default' requires an argument")
    return value if value else arg


@register_filter("join")
def _join(value: Any, arg: Optional[str] = None) -> str:
    separator = arg if arg is not None else ""
    return separator.join(str(item) for item in value)


@register_filter("first")
def _first(value: Any, arg: Optional[str] = None) -> Any:
    _require_no_arg("first", arg)
    try:
        return next(iter(value))
    except StopIteration:
        return ""


@register_filter("truncatewords")
def _truncatewords(value: Any, arg: Optional[str] = None) -> str:
    if arg is None:
        raise ValueError("filter 'truncatewords' requires a word count")
    try:
        count = int(arg)
    except ValueError:
        raise ValueError(f"truncatewords argument must be an integer, got {arg!r}")
    words = str(value).split()
    if len(words) <= count:
        return " ".join(words)
    return " ".join(words[:count]) + " ..."


@register_filter("truncatechars")
def _truncatechars(value: Any, arg: Optional[str] = None) -> str:
    if arg is None:
        raise ValueError("filter 'truncatechars' requires a character count")
    count = int(arg)
    text = str(value)
    if len(text) <= count:
        return text
    return text[: max(0, count - 3)] + "..."


@register_filter("floatformat")
def _floatformat(value: Any, arg: Optional[str] = None) -> str:
    """Format a number with N decimal places (default 1, Django-style)."""
    places = 1
    if arg is not None:
        try:
            places = int(arg)
        except ValueError:
            raise ValueError(f"floatformat argument must be an integer, got {arg!r}")
    try:
        number = float(value)
    except (TypeError, ValueError):
        return str(value)
    return f"{number:.{abs(places)}f}"


@register_filter("add")
def _add(value: Any, arg: Optional[str] = None) -> Any:
    if arg is None:
        raise ValueError("filter 'add' requires an argument")
    try:
        return int(value) + int(arg)
    except (TypeError, ValueError):
        return f"{value}{arg}"


@register_filter("safe")
def _safe(value: Any, arg: Optional[str] = None) -> SafeString:
    _require_no_arg("safe", arg)
    return SafeString(value if isinstance(value, str) else str(value))


@register_filter("escape")
def _escape(value: Any, arg: Optional[str] = None) -> SafeString:
    _require_no_arg("escape", arg)
    return SafeString(escape_html(str(value)))


#: Per-byte encoding table, built once: unreserved bytes map to
#: themselves, everything else to %XX.
_URLENCODE_TABLE = [
    chr(byte)
    if chr(byte) in
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_.~/"
    else f"%{byte:02X}"
    for byte in range(256)
]


@register_filter("urlencode")
def _urlencode(value: Any, arg: Optional[str] = None) -> str:
    _require_no_arg("urlencode", arg)
    table = _URLENCODE_TABLE
    return "".join([table[byte] for byte in str(value).encode("utf-8")])


@register_filter("pluralize")
def _pluralize(value: Any, arg: Optional[str] = None) -> str:
    suffix = arg if arg is not None else "s"
    if "," in suffix:
        singular, plural = suffix.split(",", 1)
    else:
        singular, plural = "", suffix
    try:
        count = float(value)
    except (TypeError, ValueError):
        try:
            count = len(value)
        except TypeError:
            return singular
    return singular if count == 1 else plural


@register_filter("yesno")
def _yesno(value: Any, arg: Optional[str] = None) -> str:
    choices = (arg or "yes,no").split(",")
    if len(choices) < 2:
        raise ValueError("filter 'yesno' requires at least 'yes,no'")
    if value:
        return choices[0]
    if value is None and len(choices) > 2:
        return choices[2]
    return choices[1]
