"""Compiled template node tree and expression evaluation."""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.templates.context import MISSING, Context
from repro.templates.errors import TemplateRenderError, TemplateSyntaxError
from repro.templates.filters import FILTERS, SafeString, escape_html
from repro.templates.fragcache import render_fragment

# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------

_NUMBER_RE = re.compile(r"^-?\d+(\.\d+)?$")
_VARIABLE_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z0-9_]+)*$")
_KEYWORD_LITERALS = {"True": True, "False": False, "None": None}


def _split_respecting_quotes(text: str, separator: str) -> List[str]:
    """Split on a single-character separator, ignoring quoted regions."""
    parts: List[str] = []
    current = ""
    quote = None
    for ch in text:
        if quote:
            current += ch
            if ch == quote:
                quote = None
        elif ch in "\"'":
            current += ch
            quote = ch
        elif ch == separator:
            parts.append(current)
            current = ""
        else:
            current += ch
    parts.append(current)
    return parts


class FilterExpression:
    """A variable or literal, optionally piped through filters.

    Examples: ``name``, ``item.price|floatformat:2``, ``"hi"|upper``.
    Compiled once at template-parse time.
    """

    def __init__(self, expression: str, template_name: str = "<string>"):
        self.expression = expression.strip()
        if not self.expression:
            raise TemplateSyntaxError("empty expression", template_name)
        pieces = _split_respecting_quotes(self.expression, "|")
        self._base = _compile_operand(pieces[0].strip(), template_name)
        self._filters: List[Tuple[str, Callable, Optional[object]]] = []
        for piece in pieces[1:]:
            piece = piece.strip()
            if not piece:
                raise TemplateSyntaxError(
                    f"empty filter in expression {self.expression!r}", template_name
                )
            if ":" in piece:
                name, raw_arg = _split_respecting_quotes(piece, ":")[:2]
                name = name.strip()
                arg = _compile_operand(raw_arg.strip(), template_name)
            else:
                name, arg = piece, None
            if name not in FILTERS:
                raise TemplateSyntaxError(
                    f"unknown filter {name!r} in expression {self.expression!r}",
                    template_name,
                )
            self._filters.append((name, FILTERS[name], arg))

    def resolve(self, context: Context, default: Any = "") -> Any:
        """Evaluate against a context.  Missing variables yield ``default``."""
        value = self._base(context)
        if value is MISSING:
            if not self._filters:
                return default
            value = None
        for name, func, arg in self._filters:
            arg_value = None
            if arg is not None:
                arg_value = arg(context)
                if arg_value is MISSING:
                    arg_value = None
                elif not isinstance(arg_value, str):
                    arg_value = str(arg_value)
            try:
                value = func(value, arg_value)
            except (ValueError, TypeError) as exc:
                raise TemplateRenderError(
                    f"filter {name!r} failed on {self.expression!r}: {exc}"
                )
        return value


def _literal_resolver(value: Any) -> Callable[[Context], Any]:
    resolver = lambda context: value  # noqa: E731
    # Metadata for repro.templates.compiler, which lowers operands to
    # generated code instead of calling the closure.
    resolver.operand_kind = "literal"
    resolver.operand_value = value
    return resolver


def _compile_operand(text: str, template_name: str) -> Callable[[Context], Any]:
    """Compile a literal or dotted-variable operand to a resolver."""
    if not text:
        raise TemplateSyntaxError("empty operand", template_name)
    if len(text) >= 2 and text[0] in "\"'" and text[-1] == text[0]:
        return _literal_resolver(text[1:-1])
    if text in _KEYWORD_LITERALS:
        return _literal_resolver(_KEYWORD_LITERALS[text])
    if _NUMBER_RE.match(text):
        return _literal_resolver(float(text) if "." in text else int(text))
    if _VARIABLE_RE.match(text):
        resolver = lambda context: context.resolve(text)  # noqa: E731
        resolver.operand_kind = "variable"
        resolver.operand_name = text
        return resolver
    raise TemplateSyntaxError(f"malformed operand {text!r}", template_name)


# ----------------------------------------------------------------------
# Boolean conditions for {% if %}
# ----------------------------------------------------------------------

_COMPARISON_OPS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "in": lambda a, b: a in b,
}


class Condition:
    """A compiled boolean expression for ``{% if %}`` / ``{% elif %}``.

    Grammar (tokens are whitespace-separated, quotes respected)::

        or_expr    := and_expr ("or" and_expr)*
        and_expr   := not_expr ("and" not_expr)*
        not_expr   := "not" not_expr | comparison
        comparison := operand (OP operand)?          OP in == != < > <= >= in
        comparison := operand "not" "in" operand
    """

    def __init__(self, tokens: List[str], template_name: str = "<string>"):
        if not tokens:
            raise TemplateSyntaxError("empty condition", template_name)
        self._template_name = template_name
        self._tokens = tokens
        self._pos = 0
        self._eval = self._parse_or()
        if self._pos != len(tokens):
            raise TemplateSyntaxError(
                f"unexpected token {tokens[self._pos]!r} in condition "
                f"{' '.join(tokens)!r}",
                template_name,
            )

    # -- recursive-descent parser ------------------------------------
    def _peek(self) -> Optional[str]:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _take(self) -> str:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _parse_or(self) -> Callable[[Context], bool]:
        terms = [self._parse_and()]
        while self._peek() == "or":
            self._take()
            terms.append(self._parse_and())
        if len(terms) == 1:
            return terms[0]
        return lambda context: any(term(context) for term in terms)

    def _parse_and(self) -> Callable[[Context], bool]:
        terms = [self._parse_not()]
        while self._peek() == "and":
            self._take()
            terms.append(self._parse_not())
        if len(terms) == 1:
            return terms[0]
        return lambda context: all(term(context) for term in terms)

    def _parse_not(self) -> Callable[[Context], bool]:
        if self._peek() == "not":
            self._take()
            inner = self._parse_not()
            return lambda context: not inner(context)
        return self._parse_comparison()

    def _parse_comparison(self) -> Callable[[Context], bool]:
        left = FilterExpression(self._take(), self._template_name)
        op_token = self._peek()
        if op_token == "not":
            # "a not in b"
            self._take()
            if self._peek() != "in":
                raise TemplateSyntaxError(
                    "expected 'in' after 'not' in condition", self._template_name
                )
            self._take()
            right = FilterExpression(self._take(), self._template_name)
            return lambda context: not _safe_compare(
                _COMPARISON_OPS["in"], left, right, context
            )
        if op_token in _COMPARISON_OPS:
            op = _COMPARISON_OPS[self._take()]
            if self._peek() is None:
                raise TemplateSyntaxError(
                    "missing right operand in condition", self._template_name
                )
            right = FilterExpression(self._take(), self._template_name)
            return lambda context: _safe_compare(op, left, right, context)
        return lambda context: bool(left.resolve(context, default=None))

    def evaluate(self, context: Context) -> bool:
        return bool(self._eval(context))


def _safe_compare(op, left: FilterExpression, right: FilterExpression,
                  context: Context) -> bool:
    """Apply a comparison; incomparable types evaluate to False."""
    try:
        return bool(op(left.resolve(context, default=None),
                       right.resolve(context, default=None)))
    except TypeError:
        return False


# ----------------------------------------------------------------------
# Nodes
# ----------------------------------------------------------------------


class Node:
    """Base class: a compiled template fragment."""

    def render(self, context: Context, parts: List[str]) -> None:
        """Append rendered output to ``parts``."""
        raise NotImplementedError


class TextNode(Node):
    __slots__ = ("text",)

    def __init__(self, text: str):
        self.text = text

    def render(self, context: Context, parts: List[str]) -> None:
        parts.append(self.text)


class VariableNode(Node):
    __slots__ = ("expression",)

    def __init__(self, expression: FilterExpression):
        self.expression = expression

    def render(self, context: Context, parts: List[str]) -> None:
        value = self.expression.resolve(context, default="")
        if value is None:
            value = "None"
        if context.autoescape and not isinstance(value, SafeString):
            parts.append(escape_html(value))
        else:
            parts.append(value if isinstance(value, str) else str(value))


class ForLoopInfo:
    """The ``forloop`` object visible inside a {% for %} body."""

    __slots__ = ("counter", "counter0", "revcounter", "revcounter0",
                 "first", "last", "parentloop")

    def __init__(self, index0: int, total: int, parentloop: Optional["ForLoopInfo"]):
        self.counter = index0 + 1
        self.counter0 = index0
        self.revcounter = total - index0
        self.revcounter0 = total - index0 - 1
        self.first = index0 == 0
        self.last = index0 == total - 1
        self.parentloop = parentloop


class ForNode(Node):
    __slots__ = ("loop_vars", "iterable", "body", "empty_body")

    def __init__(self, loop_vars: List[str], iterable: FilterExpression,
                 body: List[Node], empty_body: Optional[List[Node]] = None):
        self.loop_vars = loop_vars
        self.iterable = iterable
        self.body = body
        self.empty_body = empty_body or []

    def render(self, context: Context, parts: List[str]) -> None:
        values = self.iterable.resolve(context, default=None)
        if values is None:
            items: List[Any] = []
        else:
            try:
                items = list(values)
            except TypeError:
                raise TemplateRenderError(
                    f"{self.iterable.expression!r} is not iterable in {{% for %}}"
                )
        if not items:
            for node in self.empty_body:
                node.render(context, parts)
            return
        parentloop = context.get("forloop")
        total = len(items)
        context.push()
        try:
            for index, item in enumerate(items):
                context["forloop"] = ForLoopInfo(index, total, parentloop)
                self._bind(context, item)
                for node in self.body:
                    node.render(context, parts)
        finally:
            context.pop()

    def _bind(self, context: Context, item: Any) -> None:
        if len(self.loop_vars) == 1:
            context[self.loop_vars[0]] = item
            return
        try:
            unpacked = tuple(item)
        except TypeError:
            raise TemplateRenderError(
                f"cannot unpack non-sequence into {self.loop_vars!r}"
            )
        if len(unpacked) != len(self.loop_vars):
            raise TemplateRenderError(
                f"cannot unpack {len(unpacked)} values into "
                f"{len(self.loop_vars)} loop variables {self.loop_vars!r}"
            )
        for name, value in zip(self.loop_vars, unpacked):
            context[name] = value


class IfNode(Node):
    __slots__ = ("branches", "else_body")

    def __init__(self, branches: List[Tuple[Condition, List[Node]]],
                 else_body: Optional[List[Node]] = None):
        self.branches = branches
        self.else_body = else_body or []

    def render(self, context: Context, parts: List[str]) -> None:
        for condition, body in self.branches:
            if condition.evaluate(context):
                for node in body:
                    node.render(context, parts)
                return
        for node in self.else_body:
            node.render(context, parts)


class IncludeNode(Node):
    __slots__ = ("template_name", "engine")

    def __init__(self, template_name: FilterExpression, engine):
        self.template_name = template_name
        self.engine = engine

    def render(self, context: Context, parts: List[str]) -> None:
        name = self.template_name.resolve(context, default=None)
        if not name:
            raise TemplateRenderError(
                f"{{% include %}} name {self.template_name.expression!r} "
                f"resolved to nothing"
            )
        template = self.engine.get_template(str(name))
        template.render_into(context, parts)


class WithNode(Node):
    """``{% with name=expr %}`` — bind a value for the enclosed block."""

    __slots__ = ("bindings", "body")

    def __init__(self, bindings: List[Tuple[str, FilterExpression]], body: List[Node]):
        self.bindings = bindings
        self.body = body

    def render(self, context: Context, parts: List[str]) -> None:
        context.push()
        try:
            for name, expression in self.bindings:
                context[name] = expression.resolve(context, default=None)
            for node in self.body:
                node.render(context, parts)
        finally:
            context.pop()


class BlockOverride:
    """A child template's block body, in both executable forms.

    ``__blocks__`` override values are either a plain ``List[Node]``
    (pushed by an interpreted :class:`ExtendsNode`) or one of these
    (pushed by a compiled template), which carries the node list plus
    an optional compiled render function so a compiled parent keeps
    the fast path through overridden blocks.
    """

    __slots__ = ("nodes", "fn")

    def __init__(self, nodes: List[Node], fn=None):
        self.nodes = nodes
        self.fn = fn

    def render_into(self, context: Context, parts: List[str]) -> None:
        if self.fn is not None:
            self.fn(context, parts)
        else:
            for node in self.nodes:
                node.render(context, parts)


class BlockNode(Node):
    """``{% block name %}...{% endblock %}`` — an overridable region.

    In a base template the body is the default content; a child
    template's same-named block (collected by the parser) replaces it
    at render time via the context's block registry.  ``block.super``
    is intentionally out of scope (the paper-era templates never used
    it); overriding replaces wholesale.
    """

    __slots__ = ("name", "body")

    def __init__(self, name: str, body: List[Node]):
        self.name = name
        self.body = body

    def render(self, context: Context, parts: List[str]) -> None:
        overrides = context.get("__blocks__")
        body = self.body
        if overrides and self.name in overrides:
            body = overrides[self.name]
            if isinstance(body, BlockOverride):
                body.render_into(context, parts)
                return
        for node in body:
            node.render(context, parts)


class ExtendsNode(Node):
    """``{% extends "base.html" %}`` — render the parent with this
    template's blocks as overrides.  Must be the template's first tag;
    anything outside blocks in a child template is ignored (Django
    semantics)."""

    __slots__ = ("parent_name", "blocks", "engine")

    def __init__(self, parent_name: FilterExpression,
                 blocks: Dict[str, List[Node]], engine):
        self.parent_name = parent_name
        self.blocks = blocks
        self.engine = engine

    def render(self, context: Context, parts: List[str]) -> None:
        name = self.parent_name.resolve(context, default=None)
        if not name:
            raise TemplateRenderError(
                f"{{% extends %}} name {self.parent_name.expression!r} "
                f"resolved to nothing"
            )
        parent = self.engine.get_template(str(name))
        # Merge: inner (child) overrides win over any already present
        # (grandchild beats child in a 3-level chain).
        existing = context.get("__blocks__") or {}
        merged = dict(self.blocks)
        merged.update(existing)
        context.push({"__blocks__": merged})
        try:
            parent.render_into(context, parts)
        finally:
            context.pop()


class CacheNode(Node):
    """``{% cache key [timeout] [vary ...] %}`` — cache the rendered body.

    Transparent (renders the body every time) unless the loading
    engine has a :class:`repro.templates.fragcache.FragmentCache`
    enabled, so the tag is opt-in at the deployment level, not baked
    into the template.  ``key`` and ``timeout`` are expressions;
    further expressions become vary-on values appended to the cache
    key (e.g. ``{% cache sidebar 60 subject %}``).
    """

    __slots__ = ("key", "timeout", "vary", "body", "engine")

    def __init__(self, key: FilterExpression, timeout: Optional[FilterExpression],
                 vary: List[FilterExpression], body: List[Node], engine):
        self.key = key
        self.timeout = timeout
        self.vary = vary
        self.body = body
        self.engine = engine

    def _render_body(self, context: Context, parts: List[str]) -> None:
        for node in self.body:
            node.render(context, parts)

    def render(self, context: Context, parts: List[str]) -> None:
        render_fragment(self.engine, context, parts, self._render_body,
                        self.key, self.timeout, self.vary)
