"""HTTP cookie parsing and serialisation.

A 2009-era web application tracks sessions with cookies (TPC-W's
shopping-cart id is commonly carried this way); this module provides
the two halves: parsing the request's ``Cookie`` header, and building
``Set-Cookie`` response headers with the era-appropriate attributes.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

_TOKEN_FORBIDDEN = set('()<>@,;:\\"/[]?={} \t')


def parse_cookie_header(header: Optional[str]) -> Dict[str, str]:
    """Parse ``Cookie: a=1; b=two`` into a dict.

    Malformed fragments are skipped rather than rejected — clients send
    all sorts of things in Cookie headers and a bad cookie must not
    fail the request.
    """
    cookies: Dict[str, str] = {}
    if not header:
        return cookies
    for fragment in header.split(";"):
        fragment = fragment.strip()
        if not fragment or "=" not in fragment:
            continue
        name, value = fragment.split("=", 1)
        name = name.strip()
        if not name:
            continue
        value = value.strip()
        if len(value) >= 2 and value[0] == '"' and value[-1] == '"':
            value = value[1:-1]
        cookies[name] = value
    return cookies


@dataclasses.dataclass(frozen=True)
class Cookie:
    """One ``Set-Cookie`` value."""

    name: str
    value: str
    path: str = "/"
    max_age: Optional[int] = None
    http_only: bool = True
    secure: bool = False

    def __post_init__(self) -> None:
        if not self.name or any(ch in _TOKEN_FORBIDDEN for ch in self.name):
            raise ValueError(f"invalid cookie name {self.name!r}")
        if ";" in self.value or "," in self.value:
            raise ValueError(
                f"cookie value may not contain ';' or ',': {self.value!r}"
            )

    def serialize(self) -> str:
        parts = [f"{self.name}={self.value}", f"Path={self.path}"]
        if self.max_age is not None:
            parts.append(f"Max-Age={self.max_age}")
        if self.http_only:
            parts.append("HttpOnly")
        if self.secure:
            parts.append("Secure")
        return "; ".join(parts)

    @classmethod
    def expired(cls, name: str) -> "Cookie":
        """A deletion cookie (Max-Age=0)."""
        return cls(name=name, value="", max_age=0)
