"""HTTP-layer error types."""

from __future__ import annotations


class HTTPError(Exception):
    """Base class for errors that map to an HTTP error response."""

    status = 500

    def __init__(self, message: str = ""):
        super().__init__(message)
        self.message = message


class BadRequestError(HTTPError):
    """Malformed request line, headers, or encoding (400)."""

    status = 400


class RequestTooLargeError(HTTPError):
    """Request line, header block, or body exceeds configured limits (413)."""

    status = 413


class RequestTimeoutError(HTTPError):
    """The client stalled mid-request past the socket timeout (408)."""

    status = 408


class NotFoundError(HTTPError):
    """No handler or static file matches the request path (404)."""

    status = 404


class MethodNotAllowedError(HTTPError):
    """The resource exists but not for this method (405)."""

    status = 405


class ServerOverloadedError(HTTPError):
    """A bounded queue rejected the request (503)."""

    status = 503
