"""A minimal blocking HTTP client for tests, examples, and emulators.

Deliberately tiny: one request per call, ``Connection: close`` by
default (the TPC-W emulated browsers open a fresh connection per
interaction, as a think-time-separated browser of the era would).
"""

from __future__ import annotations

import dataclasses
import socket
from typing import Dict, Optional

from repro.http.errors import BadRequestError


@dataclasses.dataclass
class ClientResponse:
    """A parsed HTTP response."""

    status: int
    reason: str
    headers: Dict[str, str]
    body: bytes

    @property
    def text(self) -> str:
        return self.body.decode("utf-8", errors="replace")


def http_request(host: str, port: int, target: str, method: str = "GET",
                 headers: Optional[Dict[str, str]] = None,
                 body: bytes = b"", timeout: float = 30.0) -> ClientResponse:
    """Send one request and read the full response."""
    request_headers = {
        "Host": f"{host}:{port}",
        "User-Agent": "repro-client/1.0",
        "Connection": "close",
    }
    if headers:
        request_headers.update(headers)
    if body:
        request_headers["Content-Length"] = str(len(body))

    lines = [f"{method} {target} HTTP/1.1"]
    lines.extend(f"{name}: {value}" for name, value in request_headers.items())
    payload = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body

    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(payload)
        raw = bytearray()
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            raw.extend(chunk)
    return parse_response_bytes(bytes(raw))


def parse_response_bytes(raw: bytes) -> ClientResponse:
    """Parse a complete HTTP response byte string."""
    head, separator, rest = raw.partition(b"\r\n\r\n")
    if not separator:
        raise BadRequestError("incomplete HTTP response (no header terminator)")
    head_lines = head.decode("latin-1").split("\r\n")
    status_parts = head_lines[0].split(" ", 2)
    if len(status_parts) < 2 or not status_parts[0].startswith("HTTP/"):
        raise BadRequestError(f"malformed status line: {head_lines[0]!r}")
    status = int(status_parts[1])
    reason = status_parts[2] if len(status_parts) > 2 else ""
    headers: Dict[str, str] = {}
    for line in head_lines[1:]:
        if ":" in line:
            name, value = line.split(":", 1)
            headers[name.strip().lower()] = value.strip()
    content_length = headers.get("content-length")
    if content_length is not None:
        body = rest[: int(content_length)]
    else:
        body = rest
    return ClientResponse(status, reason, headers, body)
