"""From-scratch HTTP/1.x substrate.

Implements just enough of HTTP for a 2009-era template-based web
application server: request-line and header parsing (incremental, as a
header-parsing thread would perform it), query-string decoding, POST
form bodies, and response serialisation with Content-Length.
"""

from repro.http.cookies import Cookie, parse_cookie_header
from repro.http.errors import BadRequestError, HTTPError, RequestTooLargeError
from repro.http.request import HTTPRequest
from repro.http.response import HTTPResponse, STATUS_REASONS
from repro.http.parser import RequestParser, parse_request_bytes
from repro.http.urls import parse_query_string, url_decode

__all__ = [
    "Cookie",
    "parse_cookie_header",
    "BadRequestError",
    "HTTPError",
    "RequestTooLargeError",
    "HTTPRequest",
    "HTTPResponse",
    "STATUS_REASONS",
    "RequestParser",
    "parse_request_bytes",
    "parse_query_string",
    "url_decode",
]
