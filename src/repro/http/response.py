"""HTTP response construction and serialisation.

The paper notes a side benefit of staged rendering: because the
template-rendering thread produces the final body, it "measures the
size of the output [and] is able to set the Content-Length HTTP
response header appropriately, which cannot be achieved by most
existing methods in dynamic content generation."  Accordingly the
response object always serialises with an exact Content-Length.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Union

STATUS_REASONS: Dict[int, str] = {
    200: "OK",
    201: "Created",
    204: "No Content",
    301: "Moved Permanently",
    302: "Found",
    304: "Not Modified",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    414: "URI Too Long",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
    505: "HTTP Version Not Supported",
}


@dataclasses.dataclass
class HTTPResponse:
    """An HTTP response ready for serialisation."""

    status: int = 200
    body: bytes = b""
    headers: Dict[str, str] = dataclasses.field(default_factory=dict)
    version: str = "HTTP/1.1"

    def __post_init__(self) -> None:
        if isinstance(self.body, str):
            self.body = self.body.encode("utf-8")
        if self.status not in STATUS_REASONS:
            raise ValueError(f"unknown HTTP status code {self.status}")

    @classmethod
    def html(cls, body: Union[str, bytes], status: int = 200) -> "HTTPResponse":
        """A text/html response."""
        return cls(
            status=status,
            body=body,
            headers={"Content-Type": "text/html; charset=utf-8"},
        )

    @classmethod
    def error(cls, status: int, message: str = "") -> "HTTPResponse":
        """A minimal HTML error page for the given status."""
        reason = STATUS_REASONS.get(status, "Error")
        body = (
            f"<html><head><title>{status} {reason}</title></head>"
            f"<body><h1>{status} {reason}</h1><p>{message}</p></body></html>"
        )
        return cls.html(body, status=status)

    def set_cookie(self, name: str, value: str, **attributes) -> None:
        """Attach a Set-Cookie header (multiple cookies supported)."""
        from repro.http.cookies import Cookie

        cookie = Cookie(name=name, value=value, **attributes)
        if not hasattr(self, "_cookies"):
            self._cookies = []
        self._cookies.append(cookie)

    @property
    def reason(self) -> str:
        return STATUS_REASONS[self.status]

    def serialize(self, keep_alive: bool = False) -> bytes:
        """Render the full response, always with exact Content-Length."""
        headers = dict(self.headers)
        headers.setdefault("Content-Type", "text/html; charset=utf-8")
        # An explicit Content-Length is preserved (HEAD responses carry
        # the length of the body they omit); otherwise it is exact.
        headers.setdefault("Content-Length", str(len(self.body)))
        headers["Connection"] = "keep-alive" if keep_alive else "close"
        lines = [f"{self.version} {self.status} {self.reason}"]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        for cookie in getattr(self, "_cookies", ()):
            lines.append(f"Set-Cookie: {cookie.serialize()}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body
