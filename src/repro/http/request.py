"""The parsed HTTP request object passed between thread pools."""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.http.urls import parse_query_string, split_path_query

SUPPORTED_METHODS = frozenset({"GET", "HEAD", "POST", "PUT", "DELETE", "OPTIONS"})


@dataclasses.dataclass
class HTTPRequest:
    """A fully parsed HTTP request.

    In the staged server, a header-parsing thread builds this object
    completely (including the query-string dictionary) before handing
    it to a downstream pool; in the baseline server the single worker
    thread builds it as part of serving the whole request.

    Attributes
    ----------
    method:
        Uppercase HTTP method.
    target:
        The raw request target, e.g. ``/homepage?userid=5``.
    path:
        The target's path component, e.g. ``/homepage``.
    query:
        The raw query string, e.g. ``userid=5``.
    params:
        Query parameters (and, for form POSTs, body parameters) decoded
        into a dict — the kwargs for the dispatched page function.
    headers:
        Header fields with lower-cased names.
    body:
        Raw request body bytes (empty for bodyless requests).
    version:
        ``"HTTP/1.0"`` or ``"HTTP/1.1"``.
    """

    method: str
    target: str
    version: str = "HTTP/1.1"
    headers: Dict[str, str] = dataclasses.field(default_factory=dict)
    body: bytes = b""
    path: str = dataclasses.field(init=False)
    query: str = dataclasses.field(init=False)
    params: Dict[str, str] = dataclasses.field(init=False)

    def __post_init__(self) -> None:
        self.path, self.query = split_path_query(self.target)
        self.params = parse_query_string(self.query)
        content_type = self.headers.get("content-type", "")
        if self.body and content_type.startswith("application/x-www-form-urlencoded"):
            body_params = parse_query_string(self.body.decode("utf-8", "replace"))
            # Body parameters override query parameters on collision,
            # matching common framework behaviour for form posts.
            self.params.update(body_params)

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Case-insensitive header lookup."""
        return self.headers.get(name.lower(), default)

    @property
    def cookies(self) -> Dict[str, str]:
        """Cookies from the Cookie header (parsed lazily, cached)."""
        cached = getattr(self, "_cookies", None)
        if cached is None:
            from repro.http.cookies import parse_cookie_header

            cached = parse_cookie_header(self.headers.get("cookie"))
            object.__setattr__(self, "_cookies", cached)
        return cached

    @property
    def keep_alive(self) -> bool:
        """Whether the connection should persist after the response.

        HTTP/1.1 defaults to keep-alive unless ``Connection: close``;
        HTTP/1.0 defaults to close unless ``Connection: keep-alive``.
        """
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.1":
            return connection != "close"
        return connection == "keep-alive"

    def describe(self) -> str:
        """Short one-line description for logs: ``GET /homepage?u=5``."""
        return f"{self.method} {self.target}"
