"""URL percent-decoding and query-string parsing.

The header-parsing threads of the staged server parse the query string
into a dictionary (paper §3.2: "The headers and query string will each
be parsed into a dictionary") so that data-generation threads holding
database connections never spend time on parsing.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.http.errors import BadRequestError

_HEX_DIGITS = "0123456789abcdefABCDEF"


def url_decode(text: str, plus_as_space: bool = True) -> str:
    """Decode %XX escapes (and optionally '+' as space).

    Raises :class:`BadRequestError` on truncated or non-hex escapes;
    a malformed client request must not crash a worker thread.
    """
    if "%" not in text and (not plus_as_space or "+" not in text):
        return text
    out: List[str] = []
    i = 0
    n = len(text)
    raw = bytearray()

    def flush_raw() -> None:
        if raw:
            out.append(raw.decode("utf-8", errors="replace"))
            raw.clear()

    while i < n:
        ch = text[i]
        if ch == "%":
            if i + 2 >= n:
                raise BadRequestError(f"truncated percent-escape at offset {i}")
            hi, lo = text[i + 1], text[i + 2]
            if hi not in _HEX_DIGITS or lo not in _HEX_DIGITS:
                raise BadRequestError(
                    f"invalid percent-escape %{hi}{lo} at offset {i}"
                )
            raw.append(int(hi + lo, 16))
            i += 3
        elif ch == "+" and plus_as_space:
            flush_raw()
            out.append(" ")
            i += 1
        else:
            flush_raw()
            out.append(ch)
            i += 1
    flush_raw()
    return "".join(out)


def parse_query_string(query: str) -> Dict[str, str]:
    """Parse ``a=1&b=two`` into ``{"a": "1", "b": "two"}``.

    Later duplicates win (matching CherryPy's simple behaviour for the
    function-parameter mapping).  Keys without '=' map to the empty
    string.  An empty query yields an empty dict.
    """
    params: Dict[str, str] = {}
    if not query:
        return params
    for pair in query.split("&"):
        if not pair:
            continue
        if "=" in pair:
            key, value = pair.split("=", 1)
        else:
            key, value = pair, ""
        key = url_decode(key)
        if not key:
            raise BadRequestError(f"empty parameter name in query {query!r}")
        params[key] = url_decode(value)
    return params


def parse_query_string_multi(query: str) -> Dict[str, List[str]]:
    """Like :func:`parse_query_string` but keeping all duplicate values."""
    params: Dict[str, List[str]] = {}
    if not query:
        return params
    for pair in query.split("&"):
        if not pair:
            continue
        if "=" in pair:
            key, value = pair.split("=", 1)
        else:
            key, value = pair, ""
        key = url_decode(key)
        if not key:
            raise BadRequestError(f"empty parameter name in query {query!r}")
        params.setdefault(key, []).append(url_decode(value))
    return params


def split_path_query(target: str) -> Tuple[str, str]:
    """Split a request target into (path, query)."""
    if "?" in target:
        path, query = target.split("?", 1)
    else:
        path, query = target, ""
    return path, query
