"""Incremental HTTP request parsing.

The staged server's header-parsing pool performs two distinct steps
(paper §3.2): first it reads just the *request line* — enough to decide
static vs. dynamic — then, for dynamic requests only, it parses the
remaining headers and the query string into dictionaries.  The parser
below exposes both granularities:

- :meth:`RequestParser.feed` accepts raw bytes as they arrive from the
  socket and reports when the request line, then the full header block,
  then the body are complete.
- :func:`parse_request_bytes` is the convenience one-shot used in tests
  and by the baseline server.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Tuple

from repro.http.errors import BadRequestError, RequestTooLargeError
from repro.http.request import HTTPRequest, SUPPORTED_METHODS

MAX_REQUEST_LINE_BYTES = 8192
MAX_HEADER_BLOCK_BYTES = 65536
MAX_BODY_BYTES = 1024 * 1024
SUPPORTED_VERSIONS = frozenset({"HTTP/1.0", "HTTP/1.1"})


class ParserState(enum.Enum):
    REQUEST_LINE = "request-line"
    HEADERS = "headers"
    BODY = "body"
    COMPLETE = "complete"


def parse_request_line(line: str) -> Tuple[str, str, str]:
    """Parse ``GET /path?query HTTP/1.1`` into (method, target, version)."""
    parts = line.split(" ")
    if len(parts) != 3:
        raise BadRequestError(f"malformed request line: {line!r}")
    method, target, version = parts
    if method not in SUPPORTED_METHODS:
        raise BadRequestError(f"unsupported method {method!r}")
    if not target.startswith("/"):
        raise BadRequestError(f"request target must start with '/': {target!r}")
    if version not in SUPPORTED_VERSIONS:
        raise BadRequestError(f"unsupported HTTP version {version!r}")
    return method, target, version


def parse_header_line(line: str) -> Tuple[str, str]:
    """Parse ``Name: value`` into a (lowercased-name, value) pair."""
    if ":" not in line:
        raise BadRequestError(f"malformed header line: {line!r}")
    name, value = line.split(":", 1)
    name = name.strip().lower()
    if not name:
        raise BadRequestError(f"empty header name in line: {line!r}")
    return name, value.strip()


class RequestParser:
    """Incremental parser for one HTTP request.

    Feed it bytes; inspect :attr:`state`, :attr:`request_line`, and call
    :meth:`result` once complete.  Raises :class:`BadRequestError` or
    :class:`RequestTooLargeError` on malformed or oversized input.
    """

    def __init__(
        self,
        max_request_line: int = MAX_REQUEST_LINE_BYTES,
        max_header_block: int = MAX_HEADER_BLOCK_BYTES,
        max_body: int = MAX_BODY_BYTES,
    ):
        self._buffer = bytearray()
        self.state = ParserState.REQUEST_LINE
        self.request_line: Optional[str] = None
        self.method: Optional[str] = None
        self.target: Optional[str] = None
        self.version: Optional[str] = None
        self.headers: Dict[str, str] = {}
        self._body: bytes = b""
        self._content_length = 0
        self._max_request_line = max_request_line
        self._max_header_block = max_header_block
        self._max_body = max_body

    def feed(self, data: bytes) -> ParserState:
        """Consume bytes and advance; returns the new state."""
        if self.state is ParserState.COMPLETE:
            raise BadRequestError("parser already complete; create a new one")
        self._buffer.extend(data)
        progressed = True
        while progressed:
            progressed = False
            if self.state is ParserState.REQUEST_LINE:
                progressed = self._try_request_line()
            elif self.state is ParserState.HEADERS:
                progressed = self._try_headers()
            elif self.state is ParserState.BODY:
                progressed = self._try_body()
        return self.state

    def _take_line(self, limit: int, what: str) -> Optional[str]:
        idx = self._buffer.find(b"\r\n")
        if idx == -1:
            # Tolerate bare-LF clients.
            idx = self._buffer.find(b"\n")
            if idx == -1:
                if len(self._buffer) > limit:
                    raise RequestTooLargeError(f"{what} exceeds {limit} bytes")
                return None
            line = bytes(self._buffer[:idx])
            del self._buffer[: idx + 1]
        else:
            line = bytes(self._buffer[:idx])
            del self._buffer[: idx + 2]
        if len(line) > limit:
            raise RequestTooLargeError(f"{what} exceeds {limit} bytes")
        return line.decode("latin-1")

    def _try_request_line(self) -> bool:
        line = self._take_line(self._max_request_line, "request line")
        if line is None:
            return False
        if line == "":
            # Skip stray leading CRLF (allowed by RFC 7230 §3.5).
            return True
        self.request_line = line
        self.method, self.target, self.version = parse_request_line(line)
        self.state = ParserState.HEADERS
        return True

    def _try_headers(self) -> bool:
        while True:
            line = self._take_line(self._max_header_block, "header block")
            if line is None:
                return False
            if line == "":
                self._finish_headers()
                return True
            name, value = parse_header_line(line)
            self.headers[name] = value

    def _finish_headers(self) -> None:
        raw_length = self.headers.get("content-length", "0")
        try:
            self._content_length = int(raw_length)
        except ValueError:
            raise BadRequestError(f"invalid Content-Length: {raw_length!r}")
        if self._content_length < 0:
            raise BadRequestError(f"negative Content-Length: {self._content_length}")
        if self._content_length > self._max_body:
            raise RequestTooLargeError(
                f"body of {self._content_length} bytes exceeds {self._max_body}"
            )
        if self._content_length == 0:
            self.state = ParserState.COMPLETE
        else:
            self.state = ParserState.BODY

    def _try_body(self) -> bool:
        if len(self._buffer) < self._content_length:
            return False
        self._body = bytes(self._buffer[: self._content_length])
        del self._buffer[: self._content_length]
        self.state = ParserState.COMPLETE
        return True

    def result(self) -> HTTPRequest:
        """The parsed request; only valid once state is COMPLETE."""
        if self.state is not ParserState.COMPLETE:
            raise BadRequestError(
                f"request incomplete (parser state: {self.state.value})"
            )
        assert self.method and self.target and self.version
        return HTTPRequest(
            method=self.method,
            target=self.target,
            version=self.version,
            headers=dict(self.headers),
            body=self._body,
        )

    @property
    def leftover(self) -> bytes:
        """Bytes received beyond this request (start of a pipelined next one)."""
        return bytes(self._buffer)

    @property
    def started(self) -> bool:
        """Whether any bytes of the current request have arrived.

        Distinguishes a client that went quiet *between* requests
        (idle keep-alive — close silently) from one that stalled
        *mid-request* (merits a 408, not a disconnect 400).
        """
        return (
            self.state is not ParserState.REQUEST_LINE
            or self.request_line is not None
            or bool(self._buffer)
        )


def parse_request_bytes(data: bytes) -> HTTPRequest:
    """One-shot parse of a complete request byte string."""
    parser = RequestParser()
    state = parser.feed(data)
    if state is not ParserState.COMPLETE:
        raise BadRequestError(f"incomplete request ({state.value})")
    return parser.result()
