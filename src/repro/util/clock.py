"""Clock abstraction shared by the real server and the simulator.

The scheduling policy in :mod:`repro.core` is written against this
interface so that the identical policy code runs both in real time (the
threaded server) and in simulated time (the discrete-event kernel).
"""

from __future__ import annotations

import threading
import time


class Clock:
    """Abstract source of the current time in seconds.

    Subclasses must implement :meth:`now`.  Times are floats in seconds;
    the epoch is unspecified and only differences are meaningful.
    """

    def now(self) -> float:
        """Return the current time in seconds."""
        raise NotImplementedError


class MonotonicClock(Clock):
    """Wall-clock time from :func:`time.monotonic`.

    Used by the real threaded server.  Monotonic rather than civil time
    so that service-time measurements never go backwards.
    """

    def now(self) -> float:
        return time.monotonic()


class ManualClock(Clock):
    """A clock advanced explicitly, used by tests and the simulator.

    Thread-safe: the real server's tests drive it from multiple threads.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise ValueError(f"cannot advance clock by negative delta {delta!r}")
        with self._lock:
            self._now += delta
            return self._now

    def set(self, value: float) -> None:
        """Jump to an absolute time.  Must not move backwards."""
        with self._lock:
            if value < self._now:
                raise ValueError(
                    f"cannot move clock backwards from {self._now} to {value}"
                )
            self._now = float(value)
