"""Seeded random streams.

Every stochastic component (think times, browsing-mix transitions,
database population, service-time noise) draws from its own named
stream so that experiment runs are bit-reproducible and changing one
component's consumption pattern does not perturb the others.
"""

from __future__ import annotations

import random
from typing import Dict, Sequence


class RandomStream(random.Random):
    """A named, independently seeded :class:`random.Random`.

    The name participates in the seed so two streams spawned from the
    same root seed but different names are decorrelated.
    """

    def __init__(self, root_seed: int, name: str):
        self.name = name
        self.root_seed = root_seed
        # Mix the name into the seed deterministically (hash() is salted
        # per-process, so use a stable digest instead).
        mixed = root_seed
        for ch in name:
            mixed = (mixed * 1000003 + ord(ch)) % (2**63)
        super().__init__(mixed)

    def think_time(self, low: float = 0.7, high: float = 7.0) -> float:
        """Sample a TPC-W think time, uniform on [low, high] seconds.

        TPC-W specifies a client waits between 0.7 and 7 seconds before
        the next interaction; the paper uses exactly this range.
        """
        return self.uniform(low, high)

    def weighted_choice(self, items: Sequence, weights: Sequence[float]):
        """Pick one item with the given (not necessarily normalised) weights."""
        if len(items) != len(weights):
            raise ValueError("items and weights must have equal length")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        target = self.random() * total
        acc = 0.0
        for item, weight in zip(items, weights):
            acc += weight
            if target < acc:
                return item
        return items[-1]


def spawn_streams(root_seed: int, names: Sequence[str]) -> Dict[str, RandomStream]:
    """Create one decorrelated stream per name from a single root seed."""
    return {name: RandomStream(root_seed, name) for name in names}
