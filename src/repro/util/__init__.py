"""Shared utilities: clock abstraction, seeded RNG streams, time series.

These are deliberately tiny, dependency-free building blocks used across
the real threaded server, the discrete-event simulator, and the
experiment harness.
"""

from repro.util.clock import Clock, ManualClock, MonotonicClock
from repro.util.rng import RandomStream, spawn_streams
from repro.util.timeseries import Histogram, TimeSeries, WelfordAccumulator

__all__ = [
    "Clock",
    "ManualClock",
    "MonotonicClock",
    "RandomStream",
    "spawn_streams",
    "Histogram",
    "TimeSeries",
    "WelfordAccumulator",
]
