"""Metric containers: time series, histograms, running statistics.

Used by the server-side stats collector, the simulator's result
recorder, and the experiment harness to regenerate the paper's tables
and figures.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class TimeSeries:
    """An append-only sequence of (time, value) samples.

    Appends must be in non-decreasing time order, matching how both the
    real server (sampled once per second) and the simulator (event
    times) produce them.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._times)

    def append(self, t: float, value: float) -> None:
        with self._lock:
            if self._times and t < self._times[-1]:
                raise ValueError(
                    f"time series {self.name!r}: sample at t={t} is earlier "
                    f"than last sample at t={self._times[-1]}"
                )
            self._times.append(float(t))
            self._values.append(float(value))

    @property
    def times(self) -> List[float]:
        with self._lock:
            return list(self._times)

    @property
    def values(self) -> List[float]:
        with self._lock:
            return list(self._values)

    def samples(self) -> List[Tuple[float, float]]:
        with self._lock:
            return list(zip(self._times, self._values))

    def max(self) -> float:
        with self._lock:
            if not self._values:
                raise ValueError(f"time series {self.name!r} is empty")
            return max(self._values)

    def mean(self) -> float:
        with self._lock:
            if not self._values:
                raise ValueError(f"time series {self.name!r} is empty")
            return sum(self._values) / len(self._values)

    def window_mean(self, start: float, end: float) -> float:
        """Mean of samples with start <= t < end."""
        with self._lock:
            lo = bisect.bisect_left(self._times, start)
            hi = bisect.bisect_left(self._times, end)
            window = self._values[lo:hi]
        if not window:
            raise ValueError(
                f"time series {self.name!r}: no samples in [{start}, {end})"
            )
        return sum(window) / len(window)

    def bucketize(self, bucket_width: float, start: float = 0.0,
                  end: Optional[float] = None) -> "TimeSeries":
        """Sum event values into fixed-width buckets.

        Suitable for turning per-completion events (value 1 per sample)
        into an interactions-per-bucket throughput curve, as in the
        paper's Figures 9 and 10.
        """
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        samples = self.samples()
        if end is None:
            # Default end includes the final sample (a half-open window
            # ending exactly at the last event would silently drop it).
            end = samples[-1][0] + 1e-9 if samples else start
        n_buckets = max(1, int(math.ceil((end - start) / bucket_width)))
        sums = [0.0] * n_buckets
        for t, v in samples:
            if t < start or t >= end:
                continue
            idx = int((t - start) / bucket_width)
            if idx >= n_buckets:
                idx = n_buckets - 1
            sums[idx] += v
        out = TimeSeries(name=f"{self.name}/bucketized")
        for i, total in enumerate(sums):
            out.append(start + i * bucket_width, total)
        return out


class WelfordAccumulator:
    """Numerically stable running mean/variance (Welford's algorithm)."""

    def __init__(self, name: str = ""):
        self.name = name
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def add(self, x: float) -> None:
        with self._lock:
            self._n += 1
            delta = x - self._mean
            self._mean += delta / self._n
            self._m2 += delta * (x - self._mean)
            if x < self._min:
                self._min = x
            if x > self._max:
                self._max = x

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    @property
    def count(self) -> int:
        with self._lock:
            return self._n

    @property
    def mean(self) -> float:
        with self._lock:
            if self._n == 0:
                raise ValueError(f"accumulator {self.name!r} is empty")
            return self._mean

    @property
    def variance(self) -> float:
        with self._lock:
            if self._n < 2:
                return 0.0
            return self._m2 / (self._n - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        with self._lock:
            if self._n == 0:
                raise ValueError(f"accumulator {self.name!r} is empty")
            return self._min

    @property
    def maximum(self) -> float:
        with self._lock:
            if self._n == 0:
                raise ValueError(f"accumulator {self.name!r} is empty")
            return self._max


class SummaryAccumulator(WelfordAccumulator):
    """Welford statistics plus exact-ish percentiles.

    Retains raw samples for nearest-rank percentiles.  Memory stays
    bounded: past ``max_samples`` the retained set is decimated (every
    other sample dropped) and the retention stride doubles, so a
    long-running server keeps an evenly spaced subsample while
    ``count``/``mean``/``variance`` remain exact.  Decimation is
    deterministic — no RNG — so runs stay bit-reproducible.
    """

    def __init__(self, name: str = "", max_samples: int = 65536):
        super().__init__(name)
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self._max_samples = max_samples
        self._samples: List[float] = []
        self._stride = 1
        self._since_kept = 0

    def add(self, x: float) -> None:
        super().add(x)
        # A second lock round-trip: WelfordAccumulator.add releases the
        # lock before we retain the sample.  A reader between the two
        # sees a count one ahead of the sample list — harmless.
        with self._lock:
            self._since_kept += 1
            if self._since_kept >= self._stride:
                self._since_kept = 0
                self._samples.append(float(x))
                if len(self._samples) > self._max_samples:
                    self._samples = self._samples[::2]
                    self._stride *= 2

    def percentile(self, p: float) -> float:
        """Nearest-rank p-th percentile over the retained samples."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            if not self._samples:
                raise ValueError(f"accumulator {self.name!r} is empty")
            ordered = sorted(self._samples)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def summary(self) -> Dict[str, float]:
        """count/mean/p50/p95/p99/max as one JSON-friendly dict."""
        with self._lock:
            if not self._samples:
                return {"count": 0}
            ordered = sorted(self._samples)
            count = self._n
            mean = self._mean
            maximum = self._max

        def rank(p: float) -> float:
            return ordered[max(1, math.ceil(p / 100.0 * len(ordered))) - 1]

        return {
            "count": count,
            "mean": mean,
            "p50": rank(50),
            "p95": rank(95),
            "p99": rank(99),
            "max": maximum,
        }


class Histogram:
    """Fixed-bucket histogram with overflow bucket, plus exact percentiles.

    Keeps raw samples (the experiment scales here are small enough) so
    percentiles are exact rather than bucket-interpolated.
    """

    def __init__(self, name: str = "", bucket_bounds: Optional[Sequence[float]] = None):
        self.name = name
        if bucket_bounds is None:
            # Log-spaced bounds from 1 ms to ~100 s, suitable for
            # response-time distributions.
            bucket_bounds = [0.001 * (2**i) for i in range(18)]
        bounds = sorted(float(b) for b in bucket_bounds)
        if not bounds:
            raise ValueError("bucket_bounds must be non-empty")
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._samples: List[float] = []
        self._lock = threading.Lock()

    def add(self, x: float) -> None:
        with self._lock:
            idx = bisect.bisect_right(self._bounds, x)
            self._counts[idx] += 1
            self._samples.append(x)

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._samples)

    def bucket_counts(self) -> Dict[str, int]:
        """Counts labelled by upper bound; the last bucket is '+inf'."""
        with self._lock:
            labels = [f"<={b:g}" for b in self._bounds] + ["+inf"]
            return dict(zip(labels, self._counts))

    def percentile(self, p: float) -> float:
        """Exact p-th percentile (nearest-rank), p in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            if not self._samples:
                raise ValueError(f"histogram {self.name!r} is empty")
            ordered = sorted(self._samples)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def mean(self) -> float:
        with self._lock:
            if not self._samples:
                raise ValueError(f"histogram {self.name!r} is empty")
            return sum(self._samples) / len(self._samples)
