"""repro — Efficient Resource Management on Template-based Web Servers.

A complete reproduction of Courtwright, Yue & Wang (DSN 2009): the
staged multi-pool request-scheduling method, the substrates it needs
(HTTP server, Django-style templates, SQL database with bounded
connection pooling), the TPC-W benchmark it was evaluated on, and a
discrete-event simulator that regenerates every table and figure of
the paper's evaluation.

Quick orientation:

>>> from repro import Database, ConnectionPool, Application, StagedServer
>>> from repro import SchedulingPolicy, run_tpcw_simulation

See README.md for the tour and ``python -m repro.harness`` for the
full paper reproduction.
"""

from repro.core.policy import PolicyConfig, SchedulingPolicy
from repro.db.engine import Database
from repro.db.pool import ConnectionPool
from repro.server.app import Application
from repro.server.baseline import BaselineServer
from repro.server.pipeline import Pipeline, Stage
from repro.server.staged import StagedServer
from repro.sim.workload import WorkloadConfig, run_tpcw_simulation
from repro.templates.engine import Template, TemplateEngine

__version__ = "1.0.0"

__all__ = [
    "PolicyConfig",
    "SchedulingPolicy",
    "Database",
    "ConnectionPool",
    "Application",
    "BaselineServer",
    "Pipeline",
    "Stage",
    "StagedServer",
    "WorkloadConfig",
    "run_tpcw_simulation",
    "Template",
    "TemplateEngine",
    "__version__",
]
