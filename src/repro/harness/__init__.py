"""Experiment harness: regenerate every table and figure in §4.

:class:`ExperimentRunner` executes one baseline + one staged simulated
TPC-W run (memoized — all tables and figures in the paper come from the
same pair of one-hour runs) and exposes one method per paper artifact.
:mod:`repro.harness.report` renders them in the paper's layout.

Run ``python -m repro.harness`` for the complete reproduction.
"""

from repro.harness.experiments import ExperimentRunner, Table2Result
from repro.harness.report import (
    format_connection_utilization,
    format_figure7,
    format_figure8,
    format_figure9,
    format_figure10,
    format_series,
    format_table2,
    format_table3,
    format_table4,
)

__all__ = [
    "ExperimentRunner",
    "Table2Result",
    "format_connection_utilization",
    "format_figure7",
    "format_figure8",
    "format_figure9",
    "format_figure10",
    "format_series",
    "format_table2",
    "format_table3",
    "format_table4",
]
