"""One entry point per paper table/figure."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.core.reserve import ReserveController
from repro.sim.results import SimResults
from repro.sim.workload import (
    DEFAULT_PROFILES,
    LENGTHY_REPORT_PAGES,
    PageProfile,
    WorkloadConfig,
    run_tpcw_simulation,
)
from repro.tpcw.mix import PAPER_PAGE_NAMES
from repro.util.timeseries import TimeSeries

#: The paper's Table 3 values (seconds), for side-by-side comparison.
PAPER_TABLE3: Dict[str, Tuple[float, float]] = {
    "TPC-W admin request": (4.89, 0.62),
    "TPC-W admin response": (12.35, 18.85),
    "TPC-W best sellers": (18.49, 12.88),
    "TPC-W buy confirm": (3.86, 0.18),
    "TPC-W buy request": (3.74, 0.07),
    "TPC-W customer registration": (4.46, 0.01),
    "TPC-W execute search": (11.05, 13.21),
    "TPC-W home interaction": (2.54, 0.03),
    "TPC-W new products": (20.30, 21.39),
    "TPC-W order display": (2.78, 0.54),
    "TPC-W order inquiry": (4.84, 0.04),
    "TPC-W product detail": (1.10, 0.01),
    "TPC-W search request": (5.44, 0.01),
    "TPC-W shopping cart interaction": (6.82, 0.27),
}

#: The paper's Table 4 completion counts.
PAPER_TABLE4: Dict[str, Tuple[int, int]] = {
    "TPC-W admin request": (74, 81),
    "TPC-W admin response": (71, 72),
    "TPC-W best sellers": (7602, 9646),
    "TPC-W buy confirm": (395, 547),
    "TPC-W buy request": (429, 596),
    "TPC-W customer registration": (469, 642),
    "TPC-W execute search": (7307, 9723),
    "TPC-W home interaction": (19586, 25608),
    "TPC-W new products": (7406, 9758),
    "TPC-W order display": (184, 206),
    "TPC-W order inquiry": (219, 255),
    "TPC-W product detail": (14002, 18608),
    "TPC-W search request": (7994, 10543),
    "TPC-W shopping cart interaction": (1173, 1536),
}

#: Paper Table 2: the worked treserve example (min treserve = 20).
PAPER_TABLE2_TSPARE = [35, 24, 17, 21, 30, 36, 38, 37, 35, 39]
PAPER_TABLE2_ROWS = [
    (1, 35, 20, 0), (2, 24, 20, 0), (3, 17, 20, 6), (4, 21, 26, 5),
    (5, 30, 31, 1), (6, 36, 32, -2), (7, 38, 30, -4), (8, 37, 26, -5),
    (9, 35, 21, -1), (10, 39, 20, 0),
]

PAPER_THROUGHPUT_GAIN = 31.3  # percent


@dataclasses.dataclass
class Table2Result:
    """The replayed Table 2 trace: (second, tspare, treserve, delta)."""

    rows: List[Tuple[int, int, int, int]]

    @property
    def matches_paper(self) -> bool:
        return self.rows == PAPER_TABLE2_ROWS


def run_table2(minimum: int = 20,
               tspare_trace: Optional[List[int]] = None) -> Table2Result:
    """Replay the paper's Table 2 through the real ReserveController."""
    trace = tspare_trace if tspare_trace is not None else PAPER_TABLE2_TSPARE
    controller = ReserveController(minimum=minimum)
    rows = [
        (second, tspare, before, delta)
        for second, (tspare, before, delta) in enumerate(
            controller.run_trace(trace), start=1
        )
    ]
    return Table2Result(rows)


class ExperimentRunner:
    """Runs (and memoizes) the baseline/staged pair behind §4.

    All of Table 3, Table 4, and Figures 7–10 come from the same two
    simulated one-hour runs, exactly as in the paper.
    """

    def __init__(self, config: Optional[WorkloadConfig] = None,
                 profiles: Optional[Dict[str, PageProfile]] = None):
        self.config = config if config is not None else WorkloadConfig()
        self.profiles = profiles if profiles is not None else DEFAULT_PROFILES
        self._results: Dict[str, SimResults] = {}

    def results(self, kind: str) -> SimResults:
        if kind not in ("baseline", "staged"):
            raise ValueError(f"unknown server kind {kind!r}")
        if kind not in self._results:
            self._results[kind] = run_tpcw_simulation(
                kind, self.config, profiles=self.profiles
            )
        return self._results[kind]

    @property
    def baseline(self) -> SimResults:
        return self.results("baseline")

    @property
    def staged(self) -> SimResults:
        return self.results("staged")

    # ------------------------------------------------------------------
    # Table 3: per-page mean response times
    # ------------------------------------------------------------------
    def table3(self) -> Dict[str, Tuple[float, float]]:
        """Page name -> (unmodified, modified) mean response seconds."""
        base = self.baseline.mean_response_times()
        staged = self.staged.mean_response_times()
        rows = {}
        for path, name in PAPER_PAGE_NAMES.items():
            if path in base or path in staged:
                rows[name] = (base.get(path, 0.0), staged.get(path, 0.0))
        return rows

    # ------------------------------------------------------------------
    # Table 4: per-page completed interactions + overall gain
    # ------------------------------------------------------------------
    def table4(self) -> Dict[str, Tuple[int, int]]:
        base = self.baseline.completions
        staged = self.staged.completions
        rows = {}
        for path, name in PAPER_PAGE_NAMES.items():
            if path in base or path in staged:
                rows[name] = (base.get(path, 0), staged.get(path, 0))
        return rows

    def throughput_gain_percent(self) -> float:
        base = self.baseline.total_completions()
        staged = self.staged.total_completions()
        if base == 0:
            raise ValueError("baseline run completed no interactions")
        return 100.0 * (staged / base - 1.0)

    # ------------------------------------------------------------------
    # Figure 7: dynamic-request queue length, unmodified server
    # ------------------------------------------------------------------
    def figure7(self) -> TimeSeries:
        return self.baseline.queue_series["dynamic"]

    # ------------------------------------------------------------------
    # Figure 8: general / lengthy queue lengths, modified server
    # ------------------------------------------------------------------
    def figure8(self) -> Tuple[TimeSeries, TimeSeries]:
        staged = self.staged
        return staged.queue_series["general"], staged.queue_series["lengthy"]

    # ------------------------------------------------------------------
    # Figure 9: overall throughput (requests/min) over the run
    # ------------------------------------------------------------------
    def figure9(self, bucket_seconds: float = 60.0
                ) -> Tuple[TimeSeries, TimeSeries]:
        return (
            self.baseline.throughput_series(bucket_seconds),
            self.staged.throughput_series(bucket_seconds),
        )

    # ------------------------------------------------------------------
    # Figure 10: throughput by request class
    # ------------------------------------------------------------------
    FIGURE10_CLASSES = ("static", "dynamic", "quick", "lengthy")

    def figure10(self, bucket_seconds: float = 60.0
                 ) -> Dict[str, Tuple[TimeSeries, TimeSeries]]:
        out = {}
        for request_class in self.FIGURE10_CLASSES:
            out[request_class] = (
                self.baseline.throughput_series(bucket_seconds, request_class),
                self.staged.throughput_series(bucket_seconds, request_class),
            )
        return out

    # ------------------------------------------------------------------
    # Shape checks (the acceptance criteria from DESIGN.md §4)
    # ------------------------------------------------------------------
    def shape_report(self) -> Dict[str, object]:
        """Quantified comparison against the paper's qualitative claims."""
        table3 = self.table3()
        lengthy_names = {PAPER_PAGE_NAMES[p] for p in LENGTHY_REPORT_PAGES}
        quick_rows = {
            name: row for name, row in table3.items()
            if name not in lengthy_names
        }
        improved = {
            name: row[0] / max(row[1], 1e-9) for name, row in table3.items()
            if row[0] > row[1]
        }
        quick_speedups = [
            row[0] / max(row[1], 1e-9) for row in quick_rows.values()
        ]
        admin = table3.get("TPC-W admin response", (0.0, 0.0))
        return {
            "pages_improved": len(improved),
            "pages_total": len(table3),
            "min_quick_speedup": min(quick_speedups) if quick_speedups else 0.0,
            "max_quick_speedup": max(quick_speedups) if quick_speedups else 0.0,
            "admin_response_slower": admin[1] > admin[0],
            "throughput_gain_percent": self.throughput_gain_percent(),
            "baseline_queue_peak": self.figure7().max(),
            "staged_general_queue_peak": self.figure8()[0].max(),
            "staged_lengthy_queue_peak": self.figure8()[1].max(),
        }
