"""Full paper reproduction from the command line.

Usage::

    python -m repro.harness            # quick preset (~30 s)
    python -m repro.harness --paper    # full 400-EB hour-long runs
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness.experiments import ExperimentRunner
from repro.harness.report import full_report
from repro.sim.workload import WorkloadConfig


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce every table and figure of the paper's §4."
    )
    parser.add_argument(
        "--paper", action="store_true",
        help="full paper scale (400 EBs, 1-hour runs); default is the "
             "quick preset",
    )
    parser.add_argument("--seed", type=int, default=2009)
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument(
        "--chaos", action="store_true",
        help="run the chaos experiment instead: both topologies under "
             "a seeded fault schedule with the resilience policies "
             "(deadlines, retry, breaker) active",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=7,
        help="seed for the chaos fault plan (default 7)",
    )
    parser.add_argument(
        "--export-json", metavar="PATH", default=None,
        help="also write the full results document as JSON",
    )
    parser.add_argument(
        "--export-figures", metavar="DIR", default=None,
        help="also write gnuplot-style .dat files, one per figure",
    )
    args = parser.parse_args(argv)

    if args.paper:
        config = WorkloadConfig.paper(seed=args.seed)
    else:
        config = WorkloadConfig.quick(seed=args.seed)
    if args.clients is not None:
        import dataclasses
        config = dataclasses.replace(config, clients=args.clients)

    if args.chaos:
        from repro.harness.chaos import (
            ChaosConfig,
            format_chaos_report,
            run_chaos,
        )

        started = time.time()
        document = run_chaos(ChaosConfig(
            workload=config, fault_seed=args.fault_seed
        ))
        print(format_chaos_report(document))
        print(f"\n(total wall time: {time.time() - started:.1f}s)")
        return 0

    runner = ExperimentRunner(config)
    started = time.time()
    print(full_report(runner))
    if args.export_json:
        from repro.harness.export import export_json

        print(f"\nwrote {export_json(runner, args.export_json)}")
    if args.export_figures:
        from repro.harness.export import export_figures

        for path in export_figures(runner, args.export_figures):
            print(f"wrote {path}")
    print(f"\n(total wall time: {time.time() - started:.1f}s; "
          f"{config.clients} clients, {config.measure:.0f}s measured)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
