"""Export experiment results to JSON and gnuplot-style data files.

The paper's figures are line plots; ``export_figures`` writes one
whitespace-separated ``.dat`` file per figure (time in the first
column, one series per remaining column) so any plotting tool can
regenerate them, and ``export_json`` writes the complete result set —
tables, series, shape report — as one JSON document for downstream
analysis.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from repro.harness.experiments import (
    PAPER_TABLE3,
    PAPER_TABLE4,
    ExperimentRunner,
    run_table2,
)
from repro.util.timeseries import TimeSeries


def results_document(runner: ExperimentRunner) -> Dict:
    """The full reproduction as one JSON-serialisable document."""
    table2 = run_table2()
    general, lengthy = runner.figure8()
    fig9_unmod, fig9_mod = runner.figure9()
    fig10 = runner.figure10()
    return {
        "config": {
            "clients": runner.config.clients,
            "measure_seconds": runner.config.measure,
            "seed": runner.config.seed,
            "baseline_workers": runner.config.baseline_workers,
            "general_pool": runner.config.general_pool,
            "lengthy_pool": runner.config.lengthy_pool,
        },
        "table2": {
            "rows": table2.rows,
            "matches_paper": table2.matches_paper,
        },
        "table3": {
            name: {
                "unmodified": unmodified,
                "modified": modified,
                "paper": PAPER_TABLE3.get(name),
            }
            for name, (unmodified, modified) in runner.table3().items()
        },
        "table4": {
            name: {
                "unmodified": unmodified,
                "modified": modified,
                "paper": PAPER_TABLE4.get(name),
            }
            for name, (unmodified, modified) in runner.table4().items()
        },
        "throughput_gain_percent": runner.throughput_gain_percent(),
        "figure7": _series_samples(runner.figure7()),
        "figure8": {
            "general": _series_samples(general),
            "lengthy": _series_samples(lengthy),
        },
        "figure9": {
            "unmodified": _series_samples(fig9_unmod),
            "modified": _series_samples(fig9_mod),
        },
        "figure10": {
            request_class: {
                "unmodified": _series_samples(unmodified),
                "modified": _series_samples(modified),
            }
            for request_class, (unmodified, modified) in fig10.items()
        },
        "shape_report": runner.shape_report(),
    }


def export_json(runner: ExperimentRunner, path: str) -> str:
    """Write the full document to ``path``; returns the path."""
    document = results_document(runner)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(document, f, indent=2, sort_keys=True)
    return path


def export_bench_json(document: Dict, path: str) -> str:
    """Write a micro-benchmark baseline document (e.g.
    ``BENCH_render.json``) as stable, diff-friendly JSON; returns the
    path.  The document is whatever the benchmark measured — timings,
    speedups, cache hit rates — plus enough configuration to rerun it."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(document, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def server_stats_document(stats) -> Dict:
    """A live server's ``ServerStats`` as one JSON-serialisable document.

    Includes the per-stage queue-wait/service-time breakdown (with
    p50/p95/p99) the stage pipeline records on every hop, per-page
    response-time percentile summaries, and the per-stage connection
    busy fraction (held vs. query-busy seconds per lease strategy, the
    paper's headline resource-efficiency metric) — the labels are the
    same ones the simulator exports (``static``/``dynamic``/``quick``/
    ``lengthy`` for classes, stage names for pools), so downstream
    tooling can compare live runs against simulated ones.
    """
    return {
        "completions": stats.completions(),
        "total_completions": stats.total_completions(),
        "response_times": stats.response_time_summary(),
        "generation_times": stats.mean_generation_times(),
        "stage_timings": stats.stage_timing_summary(),
        "queue_series": {
            name: _series_samples(series)
            for name, series in stats.queue_series.items()
        },
        "connection_gauges": stats.connection_gauges(),
        "connection_utilization": stats.connection_utilization(),
        "resilience": stats.resilience_report(),
    }


def export_server_stats_json(stats, path: str) -> str:
    """Write a server's stats document to ``path``; returns the path."""
    document = server_stats_document(stats)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(document, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def export_figures(runner: ExperimentRunner, directory: str) -> List[str]:
    """Write one ``.dat`` file per figure into ``directory``.

    Each file has a ``#``-comment header naming its columns; rows are
    whitespace-separated, one sample per line — directly plottable
    with gnuplot (``plot 'fig9.dat' using 1:2 with lines``).
    """
    os.makedirs(directory, exist_ok=True)
    written: List[str] = []

    general, lengthy = runner.figure8()
    fig9_unmod, fig9_mod = runner.figure9()
    written.append(_write_dat(
        os.path.join(directory, "fig7_queue_unmodified.dat"),
        ["time_s", "queued_dynamic"],
        [runner.figure7()],
    ))
    written.append(_write_dat(
        os.path.join(directory, "fig8_queues_modified.dat"),
        ["time_s", "general_queue", "lengthy_queue"],
        [general, lengthy],
    ))
    written.append(_write_dat(
        os.path.join(directory, "fig9_throughput.dat"),
        ["time_s", "unmodified_per_bucket", "modified_per_bucket"],
        [fig9_unmod, fig9_mod],
    ))
    for request_class, (unmodified, modified) in runner.figure10().items():
        written.append(_write_dat(
            os.path.join(directory, f"fig10_{request_class}.dat"),
            ["time_s", "unmodified_per_bucket", "modified_per_bucket"],
            [unmodified, modified],
        ))
    return written


def _series_samples(series: TimeSeries) -> List[List[float]]:
    return [[t, v] for t, v in series.samples()]


def _write_dat(path: str, columns: List[str],
               series_list: List[TimeSeries]) -> str:
    """Align series on the first one's timestamps and write columns."""
    primary = series_list[0].samples()
    others = [dict(series.samples()) for series in series_list[1:]]
    with open(path, "w", encoding="utf-8") as f:
        f.write("# " + " ".join(columns) + "\n")
        for t, value in primary:
            row = [f"{t:.3f}", f"{value:g}"]
            for other in others:
                row.append(f"{other.get(t, 0.0):g}")
            f.write(" ".join(row) + "\n")
    return path
