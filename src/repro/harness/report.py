"""Render experiment results in the paper's table/figure layouts.

Figures render as ASCII sparkline-style series summaries (this is a
terminal-first reproduction); the raw series are available from the
:class:`~repro.harness.experiments.ExperimentRunner` for plotting.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.harness.experiments import (
    PAPER_TABLE3,
    PAPER_TABLE4,
    ExperimentRunner,
    Table2Result,
)
from repro.util.timeseries import TimeSeries

_BLOCKS = " ▁▂▃▄▅▆▇█"


def _sparkline(values: Sequence[float], width: int = 60) -> str:
    if not values:
        return "(no samples)"
    if len(values) > width:
        # Downsample by maximum per bucket (peaks matter for queues).
        bucket = len(values) / width
        values = [
            max(values[int(i * bucket): max(int(i * bucket) + 1,
                                            int((i + 1) * bucket))])
            for i in range(width)
        ]
    top = max(values) or 1.0
    return "".join(
        _BLOCKS[min(len(_BLOCKS) - 1, int(v / top * (len(_BLOCKS) - 1)))]
        for v in values
    )


def format_series(series: TimeSeries, label: str, unit: str = "") -> str:
    values = series.values
    if not values:
        return f"{label}: (no samples)"
    return (
        f"{label}\n"
        f"  {_sparkline(values)}\n"
        f"  min {min(values):.0f}{unit}  mean {sum(values)/len(values):.1f}"
        f"{unit}  max {max(values):.0f}{unit}  ({len(values)} samples)"
    )


def format_table2(result: Table2Result) -> str:
    lines = [
        "Table 2: Changes to treserve over an example 10-second period",
        f"{'time':>6s} {'tspare':>8s} {'treserve':>9s} {'delta':>7s}",
    ]
    for second, tspare, treserve, delta in result.rows:
        lines.append(
            f"{second:>5d}s {tspare:>8d} {treserve:>9d} {delta:>+7d}"
        )
    lines.append(
        "matches paper exactly" if result.matches_paper
        else "DOES NOT match the paper's table"
    )
    return "\n".join(lines)


def format_table3(rows: Dict[str, Tuple[float, float]],
                  include_paper: bool = True) -> str:
    header = f"{'web page name':34s} {'unmodified':>11s} {'modified':>10s}"
    if include_paper:
        header += f"   {'paper unmod':>11s} {'paper mod':>10s}"
    lines = [
        "Table 3: TPC-W pages and their average response times (seconds)",
        header,
    ]
    for name in sorted(rows):
        unmodified, modified = rows[name]
        line = f"{name:34s} {unmodified:>11.2f} {modified:>10.2f}"
        if include_paper and name in PAPER_TABLE3:
            paper_unmod, paper_mod = PAPER_TABLE3[name]
            line += f"   {paper_unmod:>11.2f} {paper_mod:>10.2f}"
        lines.append(line)
    return "\n".join(lines)


def format_table4(rows: Dict[str, Tuple[int, int]],
                  gain_percent: Optional[float] = None,
                  include_paper: bool = True) -> str:
    header = f"{'web page name':34s} {'unmodified':>11s} {'modified':>10s}"
    if include_paper:
        header += f"   {'paper unmod':>11s} {'paper mod':>10s}"
    lines = [
        "Table 4: total completed web interactions per page type",
        header,
    ]
    total_unmod = total_mod = 0
    for name in sorted(rows):
        unmodified, modified = rows[name]
        total_unmod += unmodified
        total_mod += modified
        line = f"{name:34s} {unmodified:>11d} {modified:>10d}"
        if include_paper and name in PAPER_TABLE4:
            paper_unmod, paper_mod = PAPER_TABLE4[name]
            line += f"   {paper_unmod:>11d} {paper_mod:>10d}"
        lines.append(line)
    lines.append(f"{'TOTAL':34s} {total_unmod:>11d} {total_mod:>10d}")
    if gain_percent is not None:
        lines.append(
            f"overall throughput gain: {gain_percent:+.1f}% "
            f"(paper: +31.3%)"
        )
    return "\n".join(lines)


def format_figure7(series: TimeSeries) -> str:
    return format_series(
        series,
        "Figure 7: queued dynamic requests, unmodified server",
    )


def format_figure8(general: TimeSeries, lengthy: TimeSeries) -> str:
    return "\n".join([
        format_series(
            general, "Figure 8(a): general-pool queue, modified server"
        ),
        format_series(
            lengthy, "Figure 8(b): lengthy-pool queue, modified server"
        ),
    ])


def format_figure9(unmodified: TimeSeries, modified: TimeSeries) -> str:
    return "\n".join([
        "Figure 9: throughput, all requests (per-minute buckets)",
        format_series(unmodified, "  unmodified", unit="/min"),
        format_series(modified, "  modified", unit="/min"),
    ])


def format_figure10(
    by_class: Dict[str, Tuple[TimeSeries, TimeSeries]]
) -> str:
    captions = {
        "static": "Figure 10(a): static requests",
        "dynamic": "Figure 10(b): all dynamic requests",
        "quick": "Figure 10(c): quick dynamic requests",
        "lengthy": "Figure 10(d): lengthy dynamic requests",
    }
    sections = []
    for request_class, (unmodified, modified) in by_class.items():
        sections.append("\n".join([
            captions.get(request_class, request_class),
            format_series(unmodified, "  unmodified", unit="/min"),
            format_series(modified, "  modified", unit="/min"),
        ]))
    return "\n".join(sections)


def _format_summary_cells(summary: Dict[str, float]) -> str:
    if not summary.get("count"):
        return f"{'-':>8s} {'-':>8s} {'-':>8s} {'-':>8s} {0:>7d}"
    return (
        f"{summary['mean']:>8.4f} {summary['p50']:>8.4f} "
        f"{summary['p95']:>8.4f} {summary['p99']:>8.4f} "
        f"{summary['count']:>7d}"
    )


def format_stage_breakdown(stats) -> str:
    """Per-stage latency breakdown from a live server's ``ServerStats``.

    Two rows per stage — queue wait and service time — each with
    mean/p50/p95/p99 in seconds.  This is where a request's latency
    went (header vs. general vs. render): the paper's Figure 7/8 queue
    story, measured per request by the stage pipeline instead of
    sampled once a second.
    """
    breakdown = stats.stage_timing_summary()
    lines = [
        "Per-stage latency breakdown (seconds)",
        f"{'stage':<18s} {'mean':>8s} {'p50':>8s} {'p95':>8s} "
        f"{'p99':>8s} {'count':>7s}",
    ]
    if not breakdown:
        lines.append("(no stage timings recorded)")
        return "\n".join(lines)
    for stage in sorted(breakdown):
        timings = breakdown[stage]
        lines.append(f"{stage + ' (queued)':<18s} "
                     + _format_summary_cells(timings["queue_wait"]))
        lines.append(f"{stage + ' (service)':<18s} "
                     + _format_summary_cells(timings["service"]))
    return "\n".join(lines)


def format_connection_utilization(stats) -> str:
    """Per-stage connection busy fraction from ``ServerStats``.

    One row per connection-holding stage: lease strategy, lease count,
    held vs. query-busy seconds, the busy fraction (the paper's
    headline resource-efficiency metric — held-but-idle connections are
    the waste the staged design removes), and the p95 acquire wait.
    Pinned leases return at worker shutdown, so render this after
    ``server.stop()`` for complete held-time accounting.
    """
    utilization = stats.connection_utilization()
    lines = [
        "Connection utilization per stage (busy fraction = "
        "query-busy / held)",
        f"{'stage':<12s} {'strategy':<12s} {'leases':>7s} {'held(s)':>9s} "
        f"{'busy(s)':>9s} {'busy%':>7s} {'wait p95':>9s}",
    ]
    if not utilization:
        lines.append("(no connection leases recorded)")
        return "\n".join(lines)
    for stage in sorted(utilization):
        entry = utilization[stage]
        wait = entry["acquire_wait"]
        wait_p95 = f"{wait['p95']:>9.4f}" if wait.get("count") else f"{'-':>9s}"
        lines.append(
            f"{stage:<12s} {entry['strategy']:<12s} {entry['leases']:>7d} "
            f"{entry['held_seconds']:>9.3f} {entry['busy_seconds']:>9.3f} "
            f"{entry['busy_fraction'] * 100:>6.1f}% {wait_p95}"
        )
    return "\n".join(lines)


def format_resilience_report(stats) -> str:
    """Fault-injection and policy counters from ``ServerStats``.

    One row per stage that saw any resilience activity — retries,
    deadline 504s, breaker fast-fails, degraded (stale-cache) serves,
    late completions, worker crashes — followed by the per-site
    injection tally and the breaker's state machine history.
    """
    report = stats.resilience_report()
    lines = [
        "Resilience counters per stage",
        f"{'stage':<10s} {'retries':>8s} {'deadline':>9s} {'fastfail':>9s} "
        f"{'degraded':>9s} {'late':>6s} {'crashes':>8s}",
    ]
    stages = report["stages"]
    if not stages:
        lines.append("(no resilience events recorded)")
    for stage in sorted(stages):
        entry = stages[stage]
        lines.append(
            f"{stage:<10s} {entry['retries']:>8d} "
            f"{entry['deadline_expired']:>9d} "
            f"{entry['breaker_fast_fail']:>9d} "
            f"{entry['degraded_served']:>9d} "
            f"{entry['late_completions']:>6d} "
            f"{entry['worker_crashes']:>8d}"
        )
    faults = report["faults_injected"]
    lines.append("")
    lines.append("Faults injected per site")
    if not faults:
        lines.append("(none)")
    for site in sorted(faults):
        lines.append(f"  {site:<28s} {faults[site]:>6d}")
    breaker = report["breaker"]
    transitions = ", ".join(
        f"{state}×{count}"
        for state, count in sorted(breaker["transitions"].items())
    ) or "none"
    lines.append("")
    lines.append(f"Breaker: state={breaker['state']} "
                 f"transitions: {transitions}")
    return "\n".join(lines)


def format_page_percentiles(stats) -> str:
    """Per-page response-time percentile summary from ``ServerStats``."""
    summaries = stats.response_time_summary()
    lines = [
        "Per-page response-time percentiles (seconds)",
        f"{'page':<34s} {'mean':>8s} {'p50':>8s} {'p95':>8s} "
        f"{'p99':>8s} {'count':>7s}",
    ]
    if not summaries:
        lines.append("(no completions recorded)")
        return "\n".join(lines)
    for page in sorted(summaries):
        lines.append(f"{page:<34s} " + _format_summary_cells(summaries[page]))
    return "\n".join(lines)


def full_report(runner: ExperimentRunner) -> str:
    """The complete §4 reproduction as one text report."""
    from repro.harness.experiments import run_table2

    general, lengthy = runner.figure8()
    fig9_unmod, fig9_mod = runner.figure9()
    sections = [
        format_table2(run_table2()),
        "",
        format_table3(runner.table3()),
        "",
        format_table4(runner.table4(), runner.throughput_gain_percent()),
        "",
        format_figure7(runner.figure7()),
        "",
        format_figure8(general, lengthy),
        "",
        format_figure9(fig9_unmod, fig9_mod),
        "",
        format_figure10(runner.figure10()),
        "",
        f"shape report: {runner.shape_report()}",
    ]
    return "\n".join(sections)
