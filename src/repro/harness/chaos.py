"""The chaos experiment: fault injection over the simulated TPC-W run.

Runs the paper's workload on both topologies with a deterministic
:class:`~repro.faults.plan.FaultPlan` active — transient database
failures, connection-pool exhaustion windows, render slowdowns, worker
crashes — and the full resilience stack (per-stage deadlines, bounded
retry with backoff, a circuit breaker over the connection pool)
reacting to it.  The report shows what each design absorbs: how many
faults were injected per site, how many requests were saved by a
retry, shed by the breaker, or expired at a deadline.

Everything is seeded: the same ``--seed`` reproduces the identical
fault schedule and the identical report, which is what makes the
numbers reviewable.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.faults.plan import (
    SITE_DB_QUERY,
    SITE_POOL_ACQUIRE,
    SITE_RENDER,
    SITE_WORKER,
    FaultAction,
    FaultRule,
)
from repro.faults.policies import (
    BreakerConfig,
    ResilienceConfig,
    RetryPolicy,
)
from repro.sim.workload import WorkloadConfig, run_tpcw_simulation


@dataclasses.dataclass(frozen=True)
class ChaosConfig:
    """One chaos run: the workload plus the fault schedule knobs."""

    workload: WorkloadConfig
    #: Seed for the fault plan's per-rule probability streams (the
    #: workload's own seed lives in ``workload.seed``).
    fault_seed: int = 7
    #: Probability a database query fails transiently (retried).
    transient_rate: float = 0.02
    #: Probability a render call is slowed by ``render_delay`` seconds.
    render_slow_rate: float = 0.05
    render_delay: float = 0.05
    #: Probability a worker crashes picking up a job.
    crash_rate: float = 0.001
    #: A pool-exhaustion outage window (simulated seconds from run
    #: start) during which every connection acquire fails — the event
    #: the breaker exists for.
    outage_start: float = 120.0
    outage_end: float = 150.0


def default_rules(config: ChaosConfig) -> List[FaultRule]:
    """The standard chaos schedule for :func:`run_chaos`."""
    return [
        FaultRule(site=SITE_DB_QUERY, action=FaultAction.TRANSIENT,
                  probability=config.transient_rate),
        FaultRule(site=SITE_RENDER, action=FaultAction.DELAY,
                  probability=config.render_slow_rate,
                  delay=config.render_delay),
        FaultRule(site=SITE_WORKER, action=FaultAction.CRASH,
                  probability=config.crash_rate),
        FaultRule(site=SITE_POOL_ACQUIRE, action=FaultAction.EXHAUST,
                  after=config.outage_start, until=config.outage_end),
    ]


def default_resilience(config: ChaosConfig) -> ResilienceConfig:
    return ResilienceConfig(
        request_deadline=30.0,
        retry=RetryPolicy(max_attempts=3, base_delay=0.02,
                          multiplier=2.0, max_delay=0.5),
        breaker=BreakerConfig(failure_threshold=5, recovery_timeout=5.0),
        seed=config.fault_seed,
    )


def run_chaos(config: Optional[ChaosConfig] = None) -> Dict:
    """Both topologies under the same fault schedule; one document."""
    if config is None:
        config = ChaosConfig(workload=WorkloadConfig.quick())
    rules = default_rules(config)
    resilience = default_resilience(config)
    document: Dict = {
        "fault_seed": config.fault_seed,
        "workload_seed": config.workload.seed,
        "servers": {},
    }
    for kind in ("baseline", "staged"):
        results = run_tpcw_simulation(
            kind, config=config.workload,
            fault_rules=rules, fault_seed=config.fault_seed,
            resilience=resilience,
        )
        document["servers"][kind] = {
            "completed": results.total_completions(),
            "fault_report": results.fault_report,
            "resilience_report": results.resilience_report,
        }
    return document


def format_chaos_report(document: Dict) -> str:
    """The chaos document as a terminal report."""
    lines = [
        "Chaos run: identical fault schedule on both topologies "
        f"(fault seed {document['fault_seed']}, "
        f"workload seed {document['workload_seed']})",
    ]
    for kind in sorted(document["servers"]):
        entry = document["servers"][kind]
        fault_report = entry["fault_report"]
        resilience = entry["resilience_report"]
        lines.append("")
        lines.append(f"--- {kind} ---")
        lines.append(f"completed requests: {entry['completed']}")
        lines.append(
            f"faults injected: {fault_report['total_injected']} "
            + ", ".join(f"{site}={count}" for site, count
                        in sorted(fault_report["injected"].items()))
        )
        totals = {key: 0 for key in
                  ("retries", "deadline_expired", "breaker_fast_fail",
                   "degraded_served", "worker_crashes")}
        for stage_entry in resilience["stages"].values():
            for key in totals:
                totals[key] += stage_entry[key]
        lines.append(
            "policies: "
            + ", ".join(f"{key}={value}"
                        for key, value in sorted(totals.items()))
        )
        breaker = resilience["breaker"]
        transitions = ", ".join(
            f"{state}×{count}"
            for state, count in sorted(breaker["transitions"].items())
        ) or "none"
        lines.append(f"breaker: state={breaker['state']} "
                     f"transitions: {transitions}")
    return "\n".join(lines)
