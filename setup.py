"""Setup shim: enables `python setup.py develop` in offline environments
where the wheel package (required by PEP 517 editable installs) is
unavailable.  Configuration lives in pyproject.toml."""

from setuptools import setup

setup()
